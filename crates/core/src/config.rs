//! Environment-tunable experiment sizing.

use crate::error::TeiError;
use std::collections::BTreeSet;
use std::sync::Mutex;
use std::sync::OnceLock;

/// Knob names already warned about (one stderr line per knob per
/// process, so a sharded campaign does not spam 16 copies).
fn warned() -> &'static Mutex<BTreeSet<String>> {
    static WARNED: OnceLock<Mutex<BTreeSet<String>>> = OnceLock::new();
    WARNED.get_or_init(|| Mutex::new(BTreeSet::new()))
}

fn warn_once(name: &str, detail: &str) {
    let mut seen = match warned().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    if seen.insert(name.to_string()) {
        eprintln!("warning: ignoring {name}: {detail}");
    }
}

#[cfg(test)]
pub(crate) fn warned_knobs() -> BTreeSet<String> {
    match warned().lock() {
        Ok(g) => g.clone(),
        Err(p) => p.into_inner().clone(),
    }
}

/// Read a `usize` from the environment with a default. A set-but-
/// malformed value falls back to the default *and* warns once to stderr —
/// a silently ignored `TEI_THREADS=abc` would otherwise masquerade as a
/// deliberate setting for an entire multi-hour sweep.
pub fn env_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                warn_once(name, &format!("unparsable value {v:?}, using {default}"));
                default
            }
        },
        Err(std::env::VarError::NotPresent) => default,
        Err(std::env::VarError::NotUnicode(_)) => {
            warn_once(name, &format!("non-unicode value, using {default}"));
            default
        }
    }
}

/// True when `TEI_FULL=1` selects paper-scale experiment sizes.
pub fn full_scale() -> bool {
    std::env::var("TEI_FULL").is_ok_and(|v| v == "1")
}

/// Injection runs per (benchmark, model, VR) cell. Paper: 1068 (3 % margin,
/// 95 % confidence); default scaled down for laptop runtimes. Override with
/// `TEI_RUNS`.
pub fn default_runs() -> usize {
    let fallback = if full_scale() { 1068 } else { 120 };
    env_usize("TEI_RUNS", fallback)
}

/// Operand pairs per instruction type for model development DTA. Paper: 1 M
/// per type; default scaled down. Override with `TEI_DTA_SAMPLES`.
pub fn default_dta_samples() -> usize {
    let fallback = if full_scale() { 1_000_000 } else { 20_000 };
    env_usize("TEI_DTA_SAMPLES", fallback)
}

/// Golden-run checkpoint spacing in dynamic FP operations for the
/// fork-replay campaign engine. 0 selects the recorder's auto policy
/// (a dense initial interval with adaptive thinning under a fixed
/// snapshot cap). Spacing is a pure performance knob — campaign outcome
/// tallies are identical for every value. Override with
/// `TEI_CHECKPOINT_INTERVAL`.
pub fn default_checkpoint_interval() -> u64 {
    env_usize("TEI_CHECKPOINT_INTERVAL", 0) as u64
}

/// Worker threads for sharded DTA campaigns and per-op model building.
/// Defaults to all available cores; override with `TEI_THREADS` (set it
/// to 1 for fully serial execution — results are identical either way).
pub fn default_threads() -> usize {
    let fallback = std::thread::available_parallelism().map_or(4, |n| n.get());
    env_usize("TEI_THREADS", fallback).max(1)
}

/// Supported window lane widths (`u64` words per net) of the bit-sliced
/// DTA kernel — each word carries 64 input vectors.
pub const SUPPORTED_LANES: [usize; 3] = [1, 4, 8];

/// Window lane words for the bit-sliced DTA kernel: 1, 4, or 8 `u64`s
/// per net (64 / 256 / 512 input vectors per window). A pure throughput
/// knob — campaign statistics are bit-identical at every width.
/// `None` (the default, also spelled `TEI_LANES=auto`) lets the
/// campaign pick the measured-best width for the engine backend that
/// actually runs (see [`crate::dev::resolve_lanes`]); `TEI_LANES=<n>`
/// forces a width. Unsupported widths warn once and fall back to auto.
pub fn default_lanes() -> Option<usize> {
    let raw = match std::env::var("TEI_LANES") {
        Ok(v) => v,
        Err(std::env::VarError::NotPresent) => return None,
        Err(std::env::VarError::NotUnicode(_)) => {
            warn_once("TEI_LANES", "non-unicode value, using auto");
            return None;
        }
    };
    let raw = raw.trim();
    if raw == "auto" {
        return None;
    }
    match raw.parse::<usize>() {
        Ok(lanes) if SUPPORTED_LANES.contains(&lanes) => Some(lanes),
        Ok(lanes) => {
            warn_once(
                "TEI_LANES",
                &format!("unsupported lane width {lanes} (supported: 1, 4, 8, auto), using auto"),
            );
            None
        }
        Err(_) => {
            warn_once(
                "TEI_LANES",
                &format!("unparsable value {raw:?}, using auto"),
            );
            None
        }
    }
}

/// Arrival-engine backend for DTA campaigns (see
/// [`crate::dev::KernelBackend`]): `auto` picks the netlist-specialized
/// generated kernel when a fresh one exists for the unit and falls back
/// to the interpreter otherwise; `interp` forces the interpreter;
/// `codegen` *requires* the generated kernel. A pure throughput knob —
/// campaign statistics are bit-identical across backends. Override with
/// `TEI_KERNEL`. Unrecognized values warn once and fall back to `auto`.
pub fn default_backend() -> crate::dev::KernelBackend {
    use crate::dev::KernelBackend;
    match std::env::var("TEI_KERNEL") {
        Ok(v) => match v.trim() {
            "auto" => KernelBackend::Auto,
            "interp" => KernelBackend::Interpreter,
            "codegen" => KernelBackend::Generated,
            other => {
                warn_once(
                    "TEI_KERNEL",
                    &format!(
                        "unknown backend {other:?} (supported: auto, interp, codegen), using auto"
                    ),
                );
                KernelBackend::Auto
            }
        },
        Err(std::env::VarError::NotPresent) => KernelBackend::Auto,
        Err(std::env::VarError::NotUnicode(_)) => {
            warn_once("TEI_KERNEL", "non-unicode value, using auto");
            KernelBackend::Auto
        }
    }
}

/// Directory for durable campaign journals. Override with
/// `TEI_JOURNAL_DIR`; defaults to `journal/`.
pub fn default_journal_dir() -> std::path::PathBuf {
    std::env::var_os("TEI_JOURNAL_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("journal"))
}

/// Upper sanity bound for `TEI_THREADS`: beyond this the value is a typo,
/// not a machine.
const MAX_THREADS: usize = 4096;

fn validate_knob(name: &str, check: impl Fn(usize) -> Result<(), String>) -> Result<(), TeiError> {
    let raw = match std::env::var(name) {
        Ok(v) => v,
        Err(_) => return Ok(()), // unset (or non-unicode → default path warns)
    };
    let parsed = raw.trim().parse::<usize>().map_err(|_| TeiError::Config {
        knob: name.to_string(),
        reason: format!("unparsable value {raw:?}"),
    })?;
    check(parsed).map_err(|reason| TeiError::Config {
        knob: name.to_string(),
        reason,
    })
}

/// Validate the campaign-relevant env knobs **at campaign start**: a
/// durable sweep refuses to launch on a malformed `TEI_THREADS` or
/// `TEI_CHECKPOINT_INTERVAL` rather than silently running with defaults
/// for hours.
///
/// # Errors
///
/// [`TeiError::Config`] naming the offending knob.
pub fn validate_env() -> Result<(), TeiError> {
    validate_knob("TEI_THREADS", |n| {
        if n == 0 {
            Err("must be at least 1".into())
        } else if n > MAX_THREADS {
            Err(format!("{n} exceeds the sanity cap of {MAX_THREADS}"))
        } else {
            Ok(())
        }
    })?;
    validate_knob("TEI_CHECKPOINT_INTERVAL", |_| Ok(()))?;
    if let Ok(v) = std::env::var("TEI_LANES") {
        let v = v.trim();
        if v != "auto" {
            let parsed = v.parse::<usize>().map_err(|_| TeiError::Config {
                knob: "TEI_LANES".to_string(),
                reason: format!("unparsable value {v:?} (supported: 1, 4, 8, auto)"),
            })?;
            if !SUPPORTED_LANES.contains(&parsed) {
                return Err(TeiError::Config {
                    knob: "TEI_LANES".to_string(),
                    reason: format!("unsupported lane width {parsed} (supported: 1, 4, 8, auto)"),
                });
            }
        }
    }
    validate_knob("TEI_RUNS", |n| {
        if n == 0 {
            Err("must be at least 1".into())
        } else {
            Ok(())
        }
    })?;
    if let Ok(v) = std::env::var("TEI_KERNEL") {
        let v = v.trim();
        if !matches!(v, "auto" | "interp" | "codegen") {
            return Err(TeiError::Config {
                knob: "TEI_KERNEL".to_string(),
                reason: format!("unknown backend {v:?} (supported: auto, interp, codegen)"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing_defaults() {
        assert_eq!(env_usize("TEI_SURELY_UNSET_VAR_12345", 7), 7);
    }

    #[test]
    fn malformed_env_warns_once_and_falls_back() {
        // Process-wide env mutation: use a knob name no other test reads.
        std::env::set_var("TEI_TEST_BAD_KNOB", "abc");
        assert_eq!(env_usize("TEI_TEST_BAD_KNOB", 3), 3);
        assert_eq!(env_usize("TEI_TEST_BAD_KNOB", 3), 3);
        assert!(warned_knobs().contains("TEI_TEST_BAD_KNOB"));
        std::env::remove_var("TEI_TEST_BAD_KNOB");
    }

    // Env mutation is process-wide, so every validate_env scenario
    // lives in this one test (parallel test threads would otherwise
    // observe each other's knob values mid-assertion).
    #[test]
    fn validate_env_rejects_bad_knobs() {
        std::env::set_var("TEI_THREADS", "0");
        let err = validate_env().unwrap_err();
        assert!(err.to_string().contains("TEI_THREADS"));
        std::env::set_var("TEI_THREADS", "not-a-number");
        assert!(validate_env().is_err());
        std::env::remove_var("TEI_THREADS");
        std::env::set_var("TEI_LANES", "3");
        let err = validate_env().unwrap_err();
        assert!(err.to_string().contains("TEI_LANES"));
        // The non-validating read warns and falls back instead.
        assert_eq!(default_lanes(), None);
        assert!(warned_knobs().contains("TEI_LANES"));
        std::env::set_var("TEI_LANES", "8");
        assert_eq!(default_lanes(), Some(8));
        assert!(validate_env().is_ok());
        std::env::set_var("TEI_LANES", "auto");
        assert_eq!(default_lanes(), None);
        assert!(validate_env().is_ok());
        std::env::remove_var("TEI_LANES");
        assert_eq!(default_lanes(), None);
        assert!(validate_env().is_ok());
        std::env::set_var("TEI_KERNEL", "vectorized");
        let err = validate_env().unwrap_err();
        assert!(err.to_string().contains("TEI_KERNEL"));
        // The non-validating read warns once and falls back to auto.
        assert_eq!(default_backend(), crate::dev::KernelBackend::Auto);
        assert!(warned_knobs().contains("TEI_KERNEL"));
        std::env::set_var("TEI_KERNEL", "codegen");
        assert_eq!(default_backend(), crate::dev::KernelBackend::Generated);
        assert!(validate_env().is_ok());
        std::env::remove_var("TEI_KERNEL");
        assert_eq!(default_backend(), crate::dev::KernelBackend::Auto);
        assert!(validate_env().is_ok());
    }
}
