//! The fabric coordinator: spawns workers, grants leases, survives
//! worker death, and merges the final result.
//!
//! One scheduler thread owns all state; per-connection reader threads
//! and a timer thread feed it events over a channel, so there is no
//! shared-state locking anywhere in the control plane. Worker death is
//! detected on the fast path by socket EOF (the kernel closes a killed
//! process's sockets immediately) and on the slow path by lease expiry
//! (a hung worker's lease is demoted and re-granted; if the zombie
//! later completes it anyway, the duplicate records are byte-identical
//! and the merge deduplicates them — see [`crate::fabric::merge`]).

use crate::campaign::CampaignResult;
use crate::error::TeiError;
use crate::fabric::lease::LeaseTable;
use crate::fabric::wire::{self, Message};
use crate::fabric::{merge, CampaignSpec, ResolvedCampaign};
use crate::journal::{fnv64, CampaignManifest};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Kill a specific worker with SIGKILL once the fleet has completed a
/// number of leases — the deterministic chaos hook behind the fabric's
/// kill-and-reassign smoke tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosKill {
    /// Worker index to kill.
    pub worker: u32,
    /// Fire once this many leases completed fleet-wide.
    pub after_leases: u64,
}

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Worker processes to spawn.
    pub workers: usize,
    /// Journal directory shared by the fleet.
    pub journal_dir: PathBuf,
    /// Target leases per worker when partitioning (coarser ⇒ less
    /// coordination, finer ⇒ cheaper reassignment on death).
    pub leases_per_worker: usize,
    /// Backstop for hung workers: a granted lease older than this is
    /// demoted and re-granted. Socket EOF catches dead workers long
    /// before this fires.
    pub lease_timeout: Duration,
    /// Worker process command (program + leading args); the coordinator
    /// appends `--connect/--token/--index/--journal-dir`.
    pub worker_cmd: Vec<String>,
    /// Test-only: SIGKILL a worker mid-campaign.
    pub chaos_kill_worker: Option<ChaosKill>,
}

impl FabricConfig {
    /// A config with defaults for everything but the worker command and
    /// journal directory.
    pub fn new(worker_cmd: Vec<String>, journal_dir: PathBuf) -> Self {
        FabricConfig {
            workers: 2,
            journal_dir,
            leases_per_worker: 4,
            lease_timeout: Duration::from_secs(600),
            worker_cmd,
            chaos_kill_worker: None,
        }
    }
}

/// Progress events the coordinator narrates (CLI prints them, tests
/// assert on them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricEvent {
    /// A worker process was spawned.
    WorkerSpawned {
        /// Worker index.
        worker: u32,
    },
    /// A worker completed its handshake.
    WorkerConnected {
        /// Worker index.
        worker: u32,
    },
    /// A worker died or was poisoned; its leases went back to pending.
    WorkerDied {
        /// Worker index.
        worker: u32,
        /// Leases demoted back to pending.
        reassigned: usize,
    },
    /// A lease was granted.
    LeaseGranted {
        /// Campaign id.
        campaign: u64,
        /// Worker index.
        worker: u32,
        /// Lease range start.
        lo: u64,
        /// Lease range end (exclusive).
        hi: u64,
    },
    /// Durable progress after a lease completed.
    Progress {
        /// Campaign id.
        campaign: u64,
        /// Runs durably journaled.
        completed: u64,
        /// Total runs.
        total: u64,
    },
    /// A campaign was queued.
    Queued {
        /// Campaign id.
        campaign: u64,
        /// Benchmark name.
        benchmark: String,
    },
    /// A campaign merged and finished.
    Finished {
        /// Campaign id.
        campaign: u64,
    },
    /// The chaos hook killed a worker.
    ChaosKilled {
        /// Worker index.
        worker: u32,
    },
}

/// Scheduler-thread events from the I/O threads.
enum Event {
    NewConn {
        id: u64,
        stream: TcpStream,
        peer: String,
    },
    Msg {
        id: u64,
        msg: Message,
    },
    Closed {
        id: u64,
    },
    Tick,
}

enum ConnKind {
    Unknown,
    Worker(u32),
    Client,
}

struct Conn {
    stream: TcpStream,
    peer: String,
    kind: ConnKind,
}

struct WorkerState {
    conn: u64,
    busy: Option<(u64, u64, Instant)>, // (job, lease, granted at)
    ready: HashSet<u64>,
}

struct Job {
    spec: CampaignSpec,
    resolved: ResolvedCampaign,
    manifest: CampaignManifest,
    table: LeaseTable,
    client: Option<u64>,
}

/// What queuing a campaign produced: either it was already complete on
/// disk (merged immediately) or it is now active under an id.
enum Queued {
    AlreadyComplete(Box<CampaignResult>),
    Active(u64),
}

struct Coordinator<'a> {
    cfg: &'a FabricConfig,
    listener: TcpListener,
    addr: String,
    token: u64,
    tx: Sender<Event>,
    rx: Receiver<Event>,
    conn_ids: Arc<AtomicU64>,
    stop_accept: Arc<AtomicBool>,
    conns: HashMap<u64, Conn>,
    workers: HashMap<u32, WorkerState>,
    children: HashMap<u32, Child>,
    jobs: BTreeMap<u64, Job>,
    next_job: u64,
    golden_cache: HashMap<(String, String), std::sync::Arc<crate::campaign::GoldenRun>>,
    finished: Vec<(u64, CampaignResult)>,
    total_lease_done: u64,
    chaos_fired: bool,
}

impl<'a> Coordinator<'a> {
    fn bind(cfg: &'a FabricConfig, listen: &str) -> Result<Coordinator<'a>, TeiError> {
        let listener = TcpListener::bind(listen).map_err(|e| TeiError::Fabric {
            detail: format!("bind coordinator socket {listen}: {e}"),
        })?;
        let addr = listener
            .local_addr()
            .map_err(|e| TeiError::Fabric {
                detail: format!("resolve coordinator address: {e}"),
            })?
            .to_string();
        // Spawn token: keeps stray local connections from masquerading
        // as fleet workers. Not cryptographic — the threat model is
        // accident, not attack, on a loopback socket.
        let mut seed = Vec::new();
        seed.extend_from_slice(&std::process::id().to_le_bytes());
        if let Ok(t) = std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
            seed.extend_from_slice(&t.subsec_nanos().to_le_bytes());
            seed.extend_from_slice(&t.as_secs().to_le_bytes());
        }
        let token = fnv64(&seed);
        let (tx, rx) = channel();
        Ok(Coordinator {
            cfg,
            listener,
            addr,
            token,
            tx,
            rx,
            conn_ids: Arc::new(AtomicU64::new(1)),
            stop_accept: Arc::new(AtomicBool::new(false)),
            conns: HashMap::new(),
            workers: HashMap::new(),
            children: HashMap::new(),
            jobs: BTreeMap::new(),
            next_job: 1,
            golden_cache: HashMap::new(),
            finished: Vec::new(),
            total_lease_done: 0,
            chaos_fired: false,
        })
    }

    /// Start the accept, reader, and timer threads.
    fn start_io(&self) -> Result<(), TeiError> {
        let listener = self.listener.try_clone().map_err(|e| TeiError::Fabric {
            detail: format!("clone listener: {e}"),
        })?;
        let tx = self.tx.clone();
        let ids = Arc::clone(&self.conn_ids);
        let stop = Arc::clone(&self.stop_accept);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                stream.set_nodelay(true).ok();
                let peer = stream
                    .peer_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| "unknown".to_string());
                let Ok(read_half) = stream.try_clone() else {
                    continue;
                };
                let id = ids.fetch_add(1, Ordering::Relaxed);
                if tx
                    .send(Event::NewConn {
                        id,
                        stream,
                        peer: peer.clone(),
                    })
                    .is_err()
                {
                    break;
                }
                let tx = tx.clone();
                std::thread::spawn(move || {
                    let mut r = read_half;
                    loop {
                        match wire::recv(&mut r, &peer) {
                            Ok(Some(msg)) => {
                                if tx.send(Event::Msg { id, msg }).is_err() {
                                    break;
                                }
                            }
                            Ok(None) | Err(_) => {
                                let _ = tx.send(Event::Closed { id });
                                break;
                            }
                        }
                    }
                });
            }
        });
        let tx = self.tx.clone();
        std::thread::spawn(move || loop {
            std::thread::sleep(Duration::from_millis(200));
            if tx.send(Event::Tick).is_err() {
                break;
            }
        });
        Ok(())
    }

    fn spawn_workers(&mut self, on_event: &mut dyn FnMut(&FabricEvent)) -> Result<(), TeiError> {
        let Some(program) = self.cfg.worker_cmd.first() else {
            return Err(TeiError::Fabric {
                detail: "empty worker command".to_string(),
            });
        };
        for i in 0..self.cfg.workers as u32 {
            let child = Command::new(program)
                .args(&self.cfg.worker_cmd[1..])
                .arg("--connect")
                .arg(&self.addr)
                .arg("--token")
                .arg(self.token.to_string())
                .arg("--index")
                .arg(i.to_string())
                .arg("--journal-dir")
                .arg(&self.cfg.journal_dir)
                .stdin(Stdio::null())
                .spawn()
                .map_err(|e| TeiError::Fabric {
                    detail: format!("spawn worker {i} ({program}): {e}"),
                })?;
            self.children.insert(i, child);
            on_event(&FabricEvent::WorkerSpawned { worker: i });
        }
        Ok(())
    }

    /// Queue one campaign: resolve it, reconcile journals + lease
    /// table, and either finish immediately (nothing missing) or
    /// launch it to every connected worker.
    fn queue_job(
        &mut self,
        spec: CampaignSpec,
        client: Option<u64>,
        on_event: &mut dyn FnMut(&FabricEvent),
    ) -> Result<Queued, TeiError> {
        let parsed = spec.parse()?;
        let bench = tei_workloads::build(parsed.id, parsed.scale);
        let golden = match self.golden_cache.get(&spec.golden_key()) {
            Some(g) => std::sync::Arc::clone(g),
            None => {
                let g = std::sync::Arc::new(crate::campaign::GoldenRun::capture(
                    &bench,
                    crate::fabric::GOLDEN_MEM_BYTES,
                    u64::MAX,
                )?);
                self.golden_cache
                    .insert(spec.golden_key(), std::sync::Arc::clone(&g));
                g
            }
        };
        let resolved = spec.resolve_with_golden(parsed, bench, golden);
        let manifest = resolved.manifest();
        std::fs::create_dir_all(&self.cfg.journal_dir)
            .map_err(|e| TeiError::io("create journal dir", &self.cfg.journal_dir, e))?;
        let merged = merge::scan_journals(&self.cfg.journal_dir, &manifest)?;
        // A persisted lease table must agree with the journals (and be
        // ours at all — load refuses foreign manifest hashes).
        if let Some(prev) = LeaseTable::load(&self.cfg.journal_dir, &manifest)? {
            let journaled: HashSet<u64> = merged.records.keys().copied().collect();
            prev.verify_against(&journaled)?;
        }
        let missing = merged.missing(manifest.runs);
        if missing.is_empty() {
            let result = merge::merged_result(
                &resolved.bench.id.to_string(),
                &resolved.golden,
                &resolved.model,
                &manifest,
                &self.cfg.journal_dir,
            )?;
            return Ok(Queued::AlreadyComplete(Box::new(result)));
        }
        let target = (self.cfg.workers * self.cfg.leases_per_worker).max(1);
        let table = LeaseTable::partition(&manifest, &missing, target);
        table.save(&self.cfg.journal_dir, &manifest)?;
        let id = self.next_job;
        self.next_job += 1;
        on_event(&FabricEvent::Queued {
            campaign: id,
            benchmark: spec.benchmark.clone(),
        });
        let launch = Message::Launch {
            campaign: id,
            spec: spec.clone(),
        };
        self.jobs.insert(
            id,
            Job {
                spec,
                resolved,
                manifest,
                table,
                client,
            },
        );
        // Launch to every already-connected worker; workers that
        // connect later get launched in the Hello handler.
        let worker_conns: Vec<u64> = self.workers.values().map(|w| w.conn).collect();
        for conn in worker_conns {
            self.send_to(conn, &launch);
        }
        Ok(Queued::Active(id))
    }

    /// Best-effort send; a failed write is handled when the reader
    /// thread reports the connection closed.
    fn send_to(&mut self, conn_id: u64, msg: &Message) {
        if let Some(conn) = self.conns.get_mut(&conn_id) {
            let _ = wire::send(&mut conn.stream, &conn.peer, msg);
        }
    }

    /// Grant pending leases to idle, ready workers.
    fn pump(&mut self, on_event: &mut dyn FnMut(&FabricEvent)) {
        let worker_ids: Vec<u32> = self.workers.keys().copied().collect();
        for windex in worker_ids {
            let Some(w) = self.workers.get(&windex) else {
                continue;
            };
            if w.busy.is_some() {
                continue;
            }
            let ready = w.ready.clone();
            let conn = w.conn;
            // Lowest job id first: queued campaigns drain in order while
            // later ones still overlap once workers free up.
            let grant = self.jobs.iter_mut().find_map(|(&jid, job)| {
                if !ready.contains(&jid) {
                    return None;
                }
                job.table.next_pending().map(|lease| {
                    job.table.grant(lease.id, windex);
                    (jid, lease)
                })
            });
            let Some((jid, lease)) = grant else { continue };
            if let Some(w) = self.workers.get_mut(&windex) {
                w.busy = Some((jid, lease.id, Instant::now()));
            }
            self.send_to(
                conn,
                &Message::Grant {
                    campaign: jid,
                    lease: lease.id,
                    lo: lease.lo,
                    hi: lease.hi,
                },
            );
            on_event(&FabricEvent::LeaseGranted {
                campaign: jid,
                worker: windex,
                lo: lease.lo,
                hi: lease.hi,
            });
        }
    }

    /// A worker died or was poisoned: demote its leases, drop its
    /// state, and reap the child process.
    fn on_worker_dead(&mut self, windex: u32, on_event: &mut dyn FnMut(&FabricEvent)) {
        let Some(w) = self.workers.remove(&windex) else {
            return;
        };
        self.conns.remove(&w.conn);
        let mut reassigned = 0;
        for job in self.jobs.values_mut() {
            reassigned += job.table.demote_worker(windex);
        }
        if let Some(mut child) = self.children.remove(&windex) {
            let _ = child.kill();
            let _ = child.wait();
        }
        on_event(&FabricEvent::WorkerDied {
            worker: windex,
            reassigned,
        });
    }

    /// SIGKILL the chaos target once the completion threshold is hit
    /// and the target is mid-lease (so the kill provably lands inside a
    /// lease, which is what the reassignment machinery must survive).
    fn chaos_check(&mut self, on_event: &mut dyn FnMut(&FabricEvent)) {
        if self.chaos_fired {
            return;
        }
        let Some(kill) = self.cfg.chaos_kill_worker else {
            return;
        };
        if self.total_lease_done < kill.after_leases {
            return;
        }
        let busy = self
            .workers
            .get(&kill.worker)
            .is_some_and(|w| w.busy.is_some());
        if !busy {
            return;
        }
        if let Some(child) = self.children.get_mut(&kill.worker) {
            // SIGKILL on unix: no drain, no flush — the worst case the
            // journals must absorb.
            let _ = child.kill();
            self.chaos_fired = true;
            on_event(&FabricEvent::ChaosKilled {
                worker: kill.worker,
            });
        }
    }

    /// Finish one campaign: merge, notify, retire.
    fn finalize(
        &mut self,
        jid: u64,
        on_event: &mut dyn FnMut(&FabricEvent),
    ) -> Result<(), TeiError> {
        let Some(job) = self.jobs.remove(&jid) else {
            return Ok(());
        };
        job.table.save(&self.cfg.journal_dir, &job.manifest)?;
        let result = merge::merged_result(
            &job.resolved.bench.id.to_string(),
            &job.resolved.golden,
            &job.resolved.model,
            &job.manifest,
            &self.cfg.journal_dir,
        )?;
        if let Some(client) = job.client {
            let body = serde_json::to_string(&result).unwrap_or_default();
            self.send_to(
                client,
                &Message::Finished {
                    campaign: jid,
                    result: body,
                },
            );
        }
        let worker_conns: Vec<u64> = self.workers.values().map(|w| w.conn).collect();
        for conn in worker_conns {
            self.send_to(conn, &Message::Retire { campaign: jid });
        }
        for w in self.workers.values_mut() {
            w.ready.remove(&jid);
        }
        on_event(&FabricEvent::Finished { campaign: jid });
        self.finished.push((jid, result));
        Ok(())
    }

    fn handle_msg(
        &mut self,
        conn_id: u64,
        msg: Message,
        on_event: &mut dyn FnMut(&FabricEvent),
    ) -> Result<(), TeiError> {
        match msg {
            Message::Hello { token, worker } => {
                if token != self.token {
                    // Stray connection: drop it, not the fabric.
                    if let Some(conn) = self.conns.remove(&conn_id) {
                        eprintln!("[fabric] refused connection from {} (bad token)", conn.peer);
                    }
                    return Ok(());
                }
                if let Some(conn) = self.conns.get_mut(&conn_id) {
                    conn.kind = ConnKind::Worker(worker);
                }
                self.workers.insert(
                    worker,
                    WorkerState {
                        conn: conn_id,
                        busy: None,
                        ready: HashSet::new(),
                    },
                );
                on_event(&FabricEvent::WorkerConnected { worker });
                let launches: Vec<Message> = self
                    .jobs
                    .iter()
                    .map(|(&jid, job)| Message::Launch {
                        campaign: jid,
                        spec: job.spec.clone(),
                    })
                    .collect();
                for launch in launches {
                    self.send_to(conn_id, &launch);
                }
            }
            Message::Ready {
                campaign,
                manifest_hash,
            } => {
                let Some(windex) = self.worker_of(conn_id) else {
                    return Ok(());
                };
                let Some(job) = self.jobs.get(&campaign) else {
                    return Ok(()); // already finished; worker will be retired
                };
                let expected = job.manifest.hash();
                if manifest_hash != expected {
                    // The worker binary resolves the same spec to a
                    // different campaign identity — merging its journal
                    // would be silent corruption. Fatal.
                    return Err(TeiError::Protocol {
                        peer: format!("worker {windex}"),
                        detail: format!(
                            "manifest drift: worker derived {manifest_hash:#018x}, \
                             coordinator {expected:#018x} — rebuild the fleet from one binary"
                        ),
                    });
                }
                if let Some(w) = self.workers.get_mut(&windex) {
                    w.ready.insert(campaign);
                }
                self.pump(on_event);
            }
            Message::LeaseDone {
                campaign, lease, ..
            } => {
                let Some(windex) = self.worker_of(conn_id) else {
                    return Ok(());
                };
                if let Some(w) = self.workers.get_mut(&windex) {
                    w.busy = None;
                }
                self.total_lease_done += 1;
                let mut done_job = None;
                if let Some(job) = self.jobs.get_mut(&campaign) {
                    job.table.complete(lease);
                    job.table.save(&self.cfg.journal_dir, &job.manifest)?;
                    let completed = job.table.completed_runs();
                    let total = job.manifest.runs;
                    let client = job.client;
                    on_event(&FabricEvent::Progress {
                        campaign,
                        completed,
                        total,
                    });
                    if let Some(client) = client {
                        self.send_to(
                            client,
                            &Message::Progress {
                                campaign,
                                completed,
                                total,
                            },
                        );
                    }
                    if self.jobs.get(&campaign).is_some_and(|j| j.table.all_done()) {
                        done_job = Some(campaign);
                    }
                }
                self.chaos_check(on_event);
                if let Some(jid) = done_job {
                    self.finalize(jid, on_event)?;
                }
                self.pump(on_event);
            }
            Message::WorkerError { detail } => {
                eprintln!("[fabric] {detail}");
                if let Some(windex) = self.worker_of(conn_id) {
                    self.on_worker_dead(windex, on_event);
                    self.pump(on_event);
                }
            }
            Message::Submit { spec } => {
                if let Some(conn) = self.conns.get_mut(&conn_id) {
                    conn.kind = ConnKind::Client;
                }
                match self.queue_job(spec, Some(conn_id), on_event) {
                    Ok(Queued::Active(id)) => {
                        self.send_to(conn_id, &Message::Accepted { campaign: id });
                        self.pump(on_event);
                    }
                    Ok(Queued::AlreadyComplete(result)) => {
                        // Assign an id anyway so the client sees the
                        // normal accepted → finished sequence.
                        let id = self.next_job;
                        self.next_job += 1;
                        self.send_to(conn_id, &Message::Accepted { campaign: id });
                        let body = serde_json::to_string(&*result).unwrap_or_default();
                        self.send_to(
                            conn_id,
                            &Message::Finished {
                                campaign: id,
                                result: body,
                            },
                        );
                        self.finished.push((id, *result));
                    }
                    Err(e) => {
                        self.send_to(
                            conn_id,
                            &Message::Refused {
                                detail: e.to_string(),
                            },
                        );
                    }
                }
            }
            other => {
                let peer = self
                    .conns
                    .get(&conn_id)
                    .map(|c| c.peer.clone())
                    .unwrap_or_else(|| "unknown".to_string());
                eprintln!("[fabric] ignoring unexpected message from {peer}: {other:?}");
            }
        }
        Ok(())
    }

    fn worker_of(&self, conn_id: u64) -> Option<u32> {
        match self.conns.get(&conn_id).map(|c| &c.kind) {
            Some(&ConnKind::Worker(w)) => Some(w),
            _ => None,
        }
    }

    /// Demote leases whose grant outlived the timeout (hung worker).
    fn expire_leases(&mut self, on_event: &mut dyn FnMut(&FabricEvent)) {
        let timeout = self.cfg.lease_timeout;
        let mut expired: Vec<(u32, u64, u64)> = Vec::new();
        for (&windex, w) in &self.workers {
            if let Some((jid, lease, granted)) = w.busy {
                if granted.elapsed() > timeout {
                    expired.push((windex, jid, lease));
                }
            }
        }
        for (windex, jid, lease) in expired {
            eprintln!(
                "[fabric] lease {lease} of campaign {jid} on worker {windex} expired; reassigning"
            );
            if let Some(job) = self.jobs.get_mut(&jid) {
                job.table.demote(lease);
            }
            if let Some(w) = self.workers.get_mut(&windex) {
                w.busy = None;
            }
        }
        self.pump(on_event);
    }

    /// Any job still holding unfinished leases?
    fn unfinished(&self) -> bool {
        self.jobs.values().any(|j| !j.table.all_done())
    }

    /// Graceful teardown: ask workers to exit, give them a moment, then
    /// make sure.
    fn shutdown_fleet(&mut self) {
        self.stop_accept.store(true, Ordering::Relaxed);
        let worker_conns: Vec<u64> = self.workers.values().map(|w| w.conn).collect();
        for conn in worker_conns {
            self.send_to(conn, &Message::Shutdown);
        }
        // Wake the blocked accept loop so its thread exits.
        let _ = TcpStream::connect(&self.addr);
        let deadline = Instant::now() + Duration::from_secs(2);
        for (_, child) in self.children.iter_mut() {
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    _ => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                }
            }
        }
        self.children.clear();
    }

    /// The scheduler loop. With `until_job` set (one-shot mode) it
    /// returns when that campaign finishes; otherwise it serves until a
    /// shutdown signal.
    fn run_loop(
        &mut self,
        until_job: Option<u64>,
        on_event: &mut dyn FnMut(&FabricEvent),
    ) -> Result<(), TeiError> {
        loop {
            if let Some(target) = until_job {
                if self.finished.iter().any(|(id, _)| *id == target) {
                    return Ok(());
                }
            }
            let event = self.rx.recv().map_err(|_| TeiError::Fabric {
                detail: "coordinator event channel closed".to_string(),
            })?;
            match event {
                Event::NewConn { id, stream, peer } => {
                    self.conns.insert(
                        id,
                        Conn {
                            stream,
                            peer,
                            kind: ConnKind::Unknown,
                        },
                    );
                }
                Event::Msg { id, msg } => self.handle_msg(id, msg, on_event)?,
                Event::Closed { id } => {
                    if let Some(windex) = self.worker_of(id) {
                        self.on_worker_dead(windex, on_event);
                        self.pump(on_event);
                    } else {
                        // A client (or a pre-handshake stranger) left:
                        // detach it from any job it was watching.
                        for job in self.jobs.values_mut() {
                            if job.client == Some(id) {
                                job.client = None;
                            }
                        }
                        self.conns.remove(&id);
                    }
                    if self.workers.is_empty() && self.children.is_empty() && self.unfinished() {
                        return Err(TeiError::Fabric {
                            detail: "every worker died with leases outstanding; \
                                     journals are intact — re-run to resume"
                                .to_string(),
                        });
                    }
                }
                Event::Tick => {
                    if crate::shutdown::requested() {
                        let completed: u64 =
                            self.jobs.values().map(|j| j.table.completed_runs()).sum();
                        let requested: u64 = self.jobs.values().map(|j| j.manifest.runs).sum();
                        return Err(TeiError::Interrupted {
                            completed,
                            requested,
                        });
                    }
                    self.expire_leases(on_event);
                    self.chaos_check(on_event);
                    // Reap chaos-killed (or otherwise dead) children
                    // whose sockets have not reported EOF yet.
                    let dead: Vec<u32> = self
                        .children
                        .iter_mut()
                        .filter_map(|(&i, c)| matches!(c.try_wait(), Ok(Some(_))).then_some(i))
                        .collect();
                    for windex in dead {
                        self.on_worker_dead(windex, on_event);
                        self.pump(on_event);
                    }
                    if self.workers.is_empty() && self.children.is_empty() && self.unfinished() {
                        return Err(TeiError::Fabric {
                            detail: "every worker died with leases outstanding; \
                                     journals are intact — re-run to resume"
                                .to_string(),
                        });
                    }
                }
            }
        }
    }
}

/// Run one campaign over a locally spawned worker fleet and return the
/// merged result (`tei campaign --workers N`). If the journals already
/// cover every run, the merge happens without spawning anything.
///
/// # Errors
///
/// [`TeiError::Fabric`] / [`TeiError::Protocol`] for fleet failures,
/// [`TeiError::Interrupted`] on SIGINT/SIGTERM (journals and lease
/// table are flushed; re-running resumes), plus anything campaign
/// resolution or the merge surfaces.
pub fn run_fabric_campaign(
    spec: &CampaignSpec,
    cfg: &FabricConfig,
    on_event: &mut dyn FnMut(&FabricEvent),
) -> Result<CampaignResult, TeiError> {
    crate::config::validate_env()?;
    crate::shutdown::install_handlers();
    let mut coord = Coordinator::bind(cfg, "127.0.0.1:0")?;
    let queued = coord.queue_job(spec.clone(), None, on_event)?;
    let target = match queued {
        Queued::AlreadyComplete(result) => return Ok(*result),
        Queued::Active(id) => id,
    };
    coord.start_io()?;
    coord.spawn_workers(on_event)?;
    let run = coord.run_loop(Some(target), on_event);
    coord.shutdown_fleet();
    run?;
    coord
        .finished
        .into_iter()
        .find_map(|(id, r)| (id == target).then_some(r))
        .ok_or_else(|| TeiError::Fabric {
            detail: "campaign loop exited without a result".to_string(),
        })
}

/// Long-running fabric server (`tei serve`): listens on `listen` for
/// client submissions and worker handshakes, keeps one worker fleet
/// and its golden/checkpoint caches warm across queued campaigns, and
/// streams progress + final results to each submitting client. Returns
/// on SIGINT/SIGTERM.
///
/// # Errors
///
/// [`TeiError::Fabric`] when the fleet collapses;
/// [`TeiError::Interrupted`] is the *normal* signal-driven exit.
pub fn serve(
    listen: &str,
    cfg: &FabricConfig,
    on_event: &mut dyn FnMut(&FabricEvent),
) -> Result<(), TeiError> {
    crate::config::validate_env()?;
    crate::shutdown::install_handlers();
    let mut coord = Coordinator::bind(cfg, listen)?;
    eprintln!(
        "[fabric] serving on {} ({} workers)",
        coord.addr, cfg.workers
    );
    coord.start_io()?;
    coord.spawn_workers(on_event)?;
    let run = coord.run_loop(None, on_event);
    coord.shutdown_fleet();
    match run {
        Err(e) if e.is_interrupted() => Ok(()),
        other => other,
    }
}
