//! The fabric worker process body.
//!
//! A worker connects to its coordinator, introduces itself with the
//! spawn token, and then executes whatever leases it is granted,
//! appending every completed run to its own per-worker journal before
//! acknowledging the lease. Campaign contexts (golden run, checkpoint
//! pool, model, journal handle) are cached per campaign, and golden
//! runs are additionally cached per `(benchmark, scale)` so a `tei
//! serve` fleet keeps its checkpoints warm across queued campaigns.

use crate::campaign::{execute_lease, CampaignConfig, GoldenRun};
use crate::error::TeiError;
use crate::fabric::wire::{self, Message};
use crate::fabric::CampaignSpec;
use crate::journal::{CampaignManifest, Journal};
use crate::models::DaModel;
use std::collections::{HashMap, HashSet};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use tei_workloads::build;

/// One prepared campaign context.
struct WorkerJob {
    golden: Arc<GoldenRun>,
    model: DaModel,
    cfg: CampaignConfig,
    journal: Mutex<Journal>,
    /// Runs already in *this worker's* journal (its own resume skip
    /// set; cross-worker duplicates are the merge's business).
    done: HashSet<u64>,
}

/// Run the worker loop until the coordinator says shutdown or the
/// socket closes. `index` names this worker's journal files; `token`
/// must match the coordinator's spawn token.
///
/// # Errors
///
/// [`TeiError::Fabric`] / [`TeiError::Protocol`] on connection or
/// protocol failures, plus anything campaign execution surfaces.
pub fn worker_main(addr: &str, token: u64, index: u32, journal_dir: &Path) -> Result<(), TeiError> {
    let stream = TcpStream::connect(addr).map_err(|e| TeiError::Fabric {
        detail: format!("worker {index}: connect to coordinator {addr}: {e}"),
    })?;
    stream.set_nodelay(true).ok();
    let mut reader = stream.try_clone().map_err(|e| TeiError::Fabric {
        detail: format!("worker {index}: clone stream: {e}"),
    })?;
    let mut writer = stream;
    let peer = format!("coordinator {addr}");
    wire::send(
        &mut writer,
        &peer,
        &Message::Hello {
            token,
            worker: index,
        },
    )?;

    let mut jobs: HashMap<u64, WorkerJob> = HashMap::new();
    let mut golden_cache: HashMap<(String, String), Arc<GoldenRun>> = HashMap::new();

    loop {
        let msg = match wire::recv(&mut reader, &peer)? {
            Some(m) => m,
            // Coordinator gone: nothing to clean up — journals are
            // fsync'd per append, so everything durable is on disk.
            None => return Ok(()),
        };
        match msg {
            Message::Launch { campaign, spec } => {
                match prepare(&spec, index, journal_dir, &mut golden_cache) {
                    Ok((job, manifest_hash)) => {
                        jobs.insert(campaign, job);
                        wire::send(
                            &mut writer,
                            &peer,
                            &Message::Ready {
                                campaign,
                                manifest_hash,
                            },
                        )?;
                    }
                    Err(e) => {
                        wire::send(
                            &mut writer,
                            &peer,
                            &Message::WorkerError {
                                detail: format!("worker {index}: launch failed: {e}"),
                            },
                        )?;
                    }
                }
            }
            Message::Grant {
                campaign,
                lease,
                lo,
                hi,
            } => {
                let Some(job) = jobs.get_mut(&campaign) else {
                    wire::send(
                        &mut writer,
                        &peer,
                        &Message::WorkerError {
                            detail: format!(
                                "worker {index}: grant for unknown campaign {campaign}"
                            ),
                        },
                    )?;
                    continue;
                };
                let outcome = execute_lease(
                    &job.golden,
                    &job.model,
                    &job.cfg,
                    lo,
                    hi,
                    &job.done,
                    &job.journal,
                )?;
                if outcome.interrupted {
                    // A shutdown signal reached this worker; everything
                    // completed is journaled. Exit and let the
                    // coordinator reassign the remainder.
                    return Err(TeiError::Interrupted {
                        completed: job.done.len() as u64,
                        requested: job.cfg.runs as u64,
                    });
                }
                job.done.extend(lo..hi);
                wire::send(
                    &mut writer,
                    &peer,
                    &Message::LeaseDone {
                        campaign,
                        lease,
                        completed: hi - lo,
                    },
                )?;
            }
            Message::Retire { campaign } => {
                jobs.remove(&campaign);
            }
            Message::Shutdown => return Ok(()),
            other => {
                return Err(TeiError::Protocol {
                    peer,
                    detail: format!("unexpected message for a worker: {other:?}"),
                })
            }
        }
    }
}

/// Build one campaign context: resolve the spec (golden from cache when
/// the `(benchmark, scale)` pair is warm), open this worker's journal,
/// and replay its own completed runs.
fn prepare(
    spec: &CampaignSpec,
    index: u32,
    journal_dir: &Path,
    golden_cache: &mut HashMap<(String, String), Arc<GoldenRun>>,
) -> Result<(WorkerJob, u64), TeiError> {
    let parsed = spec.parse()?;
    let bench = build(parsed.id, parsed.scale);
    let golden = match golden_cache.get(&spec.golden_key()) {
        Some(g) => Arc::clone(g),
        None => {
            let g = Arc::new(GoldenRun::capture(
                &bench,
                crate::fabric::GOLDEN_MEM_BYTES,
                u64::MAX,
            )?);
            golden_cache.insert(spec.golden_key(), Arc::clone(&g));
            g
        }
    };
    let resolved = spec.resolve_with_golden(parsed, bench, Arc::clone(&golden));
    let manifest = resolved.manifest();
    let path = journal_path(journal_dir, &manifest, index);
    std::fs::create_dir_all(journal_dir)
        .map_err(|e| TeiError::io("create journal dir", journal_dir, e))?;
    let resume = Journal::open_or_create_at(&path, &manifest)?;
    if resume.truncated_bytes > 0 {
        eprintln!(
            "[worker {index}] recovered {}: dropped {} torn byte(s)",
            path.display(),
            resume.truncated_bytes
        );
    }
    let done: HashSet<u64> = resume.completed.iter().map(|r| r.run).collect();
    let manifest_hash = manifest.hash();
    Ok((
        WorkerJob {
            golden,
            model: resolved.model,
            cfg: resolved.cfg,
            journal: Mutex::new(resume.journal),
            done,
        },
        manifest_hash,
    ))
}

/// This worker's journal path for a campaign.
pub fn journal_path(dir: &Path, manifest: &CampaignManifest, index: u32) -> PathBuf {
    dir.join(manifest.worker_file_name(index))
}
