//! Multi-process campaign fabric: lease-partitioned DTA/injection
//! campaigns over the WAL journal layer.
//!
//! The paper's methodology is embarrassingly parallel — every injection
//! run is independent given the campaign manifest — but a single process
//! caps throughput at one machine's worth of threads sharing one memo
//! cache and one allocator. The fabric turns the durable journal
//! substrate into a coordinator/worker architecture:
//!
//! * The **coordinator** ([`run_fabric_campaign`], [`serve`]) partitions
//!   a campaign's run-index space into **leases** ([`lease::LeaseTable`],
//!   persisted next to the journals and fingerprint-checked against the
//!   campaign manifest), spawns N worker processes, grants leases over a
//!   localhost TCP socket with simple length-prefixed frames
//!   ([`wire`]), and reassigns the leases of workers that die (socket
//!   EOF) or hang (lease expiry).
//! * Each **worker** ([`worker_main`]) executes leased run ranges with
//!   the existing checkpointed runner
//!   ([`crate::campaign::execute_lease`]) and appends to its *own*
//!   FNV-checksummed journal
//!   ([`CampaignManifest::worker_file_name`](crate::journal::CampaignManifest::worker_file_name)),
//!   so workers never contend on a file and a crashed worker's partial
//!   progress survives.
//! * The **merge** ([`merge`]) folds every per-worker journal into one
//!   [`OutcomeCounts`](crate::campaign::OutcomeCounts) that is
//!   byte-identical to the single-process result regardless of worker
//!   count, lease schedule, or crash/resume history: the per-run derived
//!   seed depends only on the cell seed and run index, outcomes are
//!   deterministic given the draw, and the tally is a commutative sum
//!   over run indices, so identical duplicate records (from a killed
//!   worker whose lease was re-executed) deduplicate exactly and any
//!   *conflicting* duplicate is a hard error, never a silent merge.
//!
//! `tei serve` keeps the same coordinator resident: queued campaign
//! requests from clients multiplex over one shared worker pool, and the
//! workers' golden-run/checkpoint caches stay warm across campaigns.

// Orchestration must degrade to typed errors, never panic mid-sweep
// (clippy.toml bans the panicking extractors here).
#![deny(clippy::disallowed_methods)]

pub mod coordinator;
pub mod lease;
pub mod merge;
pub mod wire;
pub mod worker;

pub use coordinator::{run_fabric_campaign, serve, ChaosKill, FabricConfig, FabricEvent};
pub use lease::{Lease, LeaseState, LeaseTable};
pub use merge::{merged_result, scan_journals};
pub use wire::Message;
pub use worker::worker_main;

use crate::campaign::{CampaignConfig, GoldenRun};
use crate::error::TeiError;
use crate::journal::CampaignManifest;
use crate::models::DaModel;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use tei_timing::VoltageReduction;
use tei_workloads::{build, Benchmark, BenchmarkId, Scale};

/// Memory image size every fabric golden run is captured with (the same
/// 8 MiB the durable campaign CLI uses — part of the campaign identity,
/// so coordinator and workers must agree).
pub const GOLDEN_MEM_BYTES: usize = 8 << 20;

/// A queued campaign request: everything a worker needs to rebuild the
/// exact campaign context (golden run, model, config) independently.
/// The coordinator and every worker derive the campaign manifest from
/// their own resolution of this spec and cross-check the hashes at
/// launch, so binary or netlist drift between processes is refused
/// instead of silently merging incompatible journals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Benchmark name (e.g. `sobel`, `is`, `k-means`).
    pub benchmark: String,
    /// Problem scale: `test`, `small`, or `full`.
    pub scale: String,
    /// Injection model: `fixed:<er>` (calibration-free DA model).
    pub model: String,
    /// Voltage-reduction corner: `vr15` or `vr20`.
    pub vr: String,
    /// Total injection runs.
    pub runs: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Timeout threshold as a multiple of the golden instruction count.
    pub timeout_factor: f64,
    /// Worker threads *inside* each worker process.
    pub threads_per_worker: u64,
    /// Per-run sleep in ms (test-only; lets kill tests land mid-lease).
    pub throttle_ms: u64,
}

impl CampaignSpec {
    /// A spec with the CLI defaults for everything but the benchmark.
    pub fn new(benchmark: &str) -> Self {
        CampaignSpec {
            benchmark: benchmark.to_string(),
            scale: "test".to_string(),
            model: "fixed:1e-2".to_string(),
            vr: "vr20".to_string(),
            runs: 120,
            seed: 1,
            timeout_factor: 2.0,
            threads_per_worker: 1,
            throttle_ms: 0,
        }
    }

    /// Parse and validate the string fields.
    ///
    /// # Errors
    ///
    /// [`TeiError::Config`] naming the offending field.
    pub fn parse(&self) -> Result<ParsedSpec, TeiError> {
        let bad = |knob: &str, reason: String| TeiError::Config {
            knob: knob.to_string(),
            reason,
        };
        let id = BenchmarkId::all()
            .into_iter()
            .find(|b| b.name() == self.benchmark)
            .ok_or_else(|| {
                bad(
                    "benchmark",
                    format!("unknown benchmark {:?}", self.benchmark),
                )
            })?;
        let scale = match self.scale.as_str() {
            "test" => Scale::Test,
            "small" => Scale::Small,
            "full" => Scale::Full,
            other => return Err(bad("scale", format!("unknown scale {other:?}"))),
        };
        let vr = match self.vr.as_str() {
            "vr15" => VoltageReduction::VR15,
            "vr20" => VoltageReduction::VR20,
            other => return Err(bad("vr", format!("unknown VR level {other:?}"))),
        };
        let er = self
            .model
            .strip_prefix("fixed")
            .map(|r| r.strip_prefix(':').unwrap_or("1e-2"))
            .and_then(|r| r.parse::<f64>().ok())
            .ok_or_else(|| {
                bad(
                    "model",
                    format!("unknown model {:?} (supported: fixed[:<er>])", self.model),
                )
            })?;
        if self.runs == 0 {
            return Err(bad("runs", "must be at least 1".into()));
        }
        Ok(ParsedSpec { id, scale, vr, er })
    }

    /// Resolve the spec into a full campaign context: build the
    /// benchmark, capture the golden run, and construct model + config.
    /// Deterministic, so every process resolving the same spec derives
    /// the same campaign manifest.
    ///
    /// # Errors
    ///
    /// [`TeiError::Config`] for malformed fields and
    /// [`TeiError::GoldenRun`] when the golden run fails.
    pub fn resolve(&self) -> Result<ResolvedCampaign, TeiError> {
        let parsed = self.parse()?;
        let bench = build(parsed.id, parsed.scale);
        let golden = Arc::new(GoldenRun::capture(&bench, GOLDEN_MEM_BYTES, u64::MAX)?);
        Ok(self.resolve_with_golden(parsed, bench, golden))
    }

    /// [`CampaignSpec::resolve`] with an already-captured golden run
    /// (the coordinator's and workers' golden cache path).
    pub fn resolve_with_golden(
        &self,
        parsed: ParsedSpec,
        bench: Benchmark,
        golden: Arc<GoldenRun>,
    ) -> ResolvedCampaign {
        let model = DaModel::from_fixed(parsed.vr, parsed.er);
        let mut cfg = CampaignConfig {
            runs: self.runs as usize,
            seed: self.seed,
            timeout_factor: self.timeout_factor,
            threads: (self.threads_per_worker as usize).max(1),
            ..CampaignConfig::default()
        };
        cfg.chaos.throttle_ms = self.throttle_ms;
        ResolvedCampaign {
            bench,
            golden,
            model,
            cfg,
        }
    }

    /// The `(benchmark, scale)` key workers and the coordinator cache
    /// golden runs under, shared across campaigns that differ only in
    /// model, VR, seed, or run count.
    pub fn golden_key(&self) -> (String, String) {
        (self.benchmark.clone(), self.scale.clone())
    }
}

/// The validated, typed fields of a [`CampaignSpec`].
#[derive(Debug, Clone, Copy)]
pub struct ParsedSpec {
    /// Benchmark.
    pub id: BenchmarkId,
    /// Problem scale.
    pub scale: Scale,
    /// VR corner.
    pub vr: VoltageReduction,
    /// Fixed error ratio of the DA model.
    pub er: f64,
}

/// A fully resolved campaign: everything [`crate::campaign`] needs.
#[derive(Debug)]
pub struct ResolvedCampaign {
    /// The built benchmark.
    pub bench: Benchmark,
    /// The captured golden run (with its checkpoint pool), shared with
    /// the golden cache.
    pub golden: Arc<GoldenRun>,
    /// The injection model.
    pub model: DaModel,
    /// Campaign sizing.
    pub cfg: CampaignConfig,
}

impl ResolvedCampaign {
    /// The campaign manifest this context journals under.
    pub fn manifest(&self) -> CampaignManifest {
        crate::campaign::campaign_manifest(
            &self.bench.id.to_string(),
            &self.golden,
            &self.model,
            &self.cfg,
        )
    }
}
