//! Lease partitioning of a campaign's run-index space.
//!
//! A lease is a contiguous run range `[lo, hi)` granted to exactly one
//! worker at a time. The table is built from the *journals* (the ground
//! truth): runs already durably recorded in any per-worker journal are
//! excluded, so a resumed campaign leases only the missing work. The
//! table is persisted next to the journals
//! ([`CampaignManifest::lease_file_name`]) keyed by the manifest hash —
//! a table from a different campaign is refused, never reused — and
//! re-verified against the journals on every resume: a `Done` lease
//! whose runs are absent from every journal flags corruption loudly.
//!
//! Leases are deliberately coarse (a handful per worker): the unit of
//! reassignment on worker death, not a work-stealing queue. Losing a
//! worker mid-lease costs at most the unjournaled suffix of one lease,
//! which the journals' run-level resume granularity then shrinks to
//! nothing on the next partition.

use crate::error::TeiError;
use crate::journal::{atomic_write_checksummed, CampaignManifest};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::path::{Path, PathBuf};

/// One leased run range `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lease {
    /// Stable lease id within the table.
    pub id: u64,
    /// First run index.
    pub lo: u64,
    /// One past the last run index.
    pub hi: u64,
}

impl Lease {
    /// Runs covered by the lease.
    pub fn len(&self) -> u64 {
        self.hi - self.lo
    }

    /// Whether the lease covers no runs (never true for built tables).
    pub fn is_empty(&self) -> bool {
        self.hi <= self.lo
    }
}

/// Assignment state of one lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LeaseState {
    /// Not yet granted (or demoted after its worker died).
    Pending,
    /// Granted to a live worker.
    Granted {
        /// Worker index holding the lease.
        worker: u32,
    },
    /// Every run in the range is durably journaled.
    Done,
}

/// One table row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeaseEntry {
    /// The range.
    pub lease: Lease,
    /// Its state.
    pub state: LeaseState,
}

/// The campaign's lease table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeaseTable {
    /// Table format version.
    pub version: u32,
    /// Manifest hash of the campaign this table partitions — the
    /// fingerprint [`LeaseTable::load`] refuses mismatches on.
    pub manifest_hash: u64,
    /// Total runs of the campaign.
    pub runs: u64,
    /// Runs that were already journaled when the table was built (they
    /// appear in no lease).
    pub already_complete: u64,
    /// The leases.
    pub entries: Vec<LeaseEntry>,
}

impl LeaseTable {
    /// Partition the missing run indices (sorted, deduplicated) into
    /// roughly `target_leases` contiguous leases. Contiguity is never
    /// broken across a gap of already-completed runs, so every lease is
    /// a dense range.
    pub fn partition(
        manifest: &CampaignManifest,
        missing: &[u64],
        target_leases: usize,
    ) -> LeaseTable {
        // Coalesce the missing indices into maximal contiguous ranges.
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for &run in missing {
            match ranges.last_mut() {
                Some((_, hi)) if *hi == run => *hi += 1,
                _ => ranges.push((run, run + 1)),
            }
        }
        // Split ranges so no lease exceeds ~total/target runs.
        let total: u64 = ranges.iter().map(|(lo, hi)| hi - lo).sum();
        let max_len = total.div_ceil(target_leases.max(1) as u64).max(1);
        let mut entries = Vec::new();
        let mut id = 0u64;
        for (lo, hi) in ranges {
            let mut cursor = lo;
            while cursor < hi {
                let end = (cursor + max_len).min(hi);
                entries.push(LeaseEntry {
                    lease: Lease {
                        id,
                        lo: cursor,
                        hi: end,
                    },
                    state: LeaseState::Pending,
                });
                id += 1;
                cursor = end;
            }
        }
        LeaseTable {
            version: 1,
            manifest_hash: manifest.hash(),
            runs: manifest.runs,
            already_complete: manifest.runs - total,
            entries,
        }
    }

    /// The next pending lease, lowest run range first.
    pub fn next_pending(&self) -> Option<Lease> {
        self.entries
            .iter()
            .find(|e| e.state == LeaseState::Pending)
            .map(|e| e.lease)
    }

    /// Mark a lease granted to `worker`.
    pub fn grant(&mut self, lease_id: u64, worker: u32) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.lease.id == lease_id) {
            e.state = LeaseState::Granted { worker };
        }
    }

    /// Mark a lease done; returns `false` when it already was (a
    /// duplicate completion from an expiry re-grant — harmless, the
    /// records are identical).
    pub fn complete(&mut self, lease_id: u64) -> bool {
        match self.entries.iter_mut().find(|e| e.lease.id == lease_id) {
            Some(e) if e.state != LeaseState::Done => {
                e.state = LeaseState::Done;
                true
            }
            _ => false,
        }
    }

    /// Demote one granted lease back to pending (expiry path).
    pub fn demote(&mut self, lease_id: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.lease.id == lease_id) {
            if e.state != LeaseState::Done {
                e.state = LeaseState::Pending;
            }
        }
    }

    /// Demote every lease granted to a dead worker; returns how many.
    pub fn demote_worker(&mut self, worker: u32) -> usize {
        let mut n = 0;
        for e in &mut self.entries {
            if e.state == (LeaseState::Granted { worker }) {
                e.state = LeaseState::Pending;
                n += 1;
            }
        }
        n
    }

    /// Whether every lease is done.
    pub fn all_done(&self) -> bool {
        self.entries.iter().all(|e| e.state == LeaseState::Done)
    }

    /// Runs durably complete so far: the pre-existing journal records
    /// plus every `Done` lease.
    pub fn completed_runs(&self) -> u64 {
        self.already_complete
            + self
                .entries
                .iter()
                .filter(|e| e.state == LeaseState::Done)
                .map(|e| e.lease.len())
                .sum::<u64>()
    }

    /// Consistency check against the journals' completed-run set: every
    /// run of a `Done` lease must be journaled somewhere.
    ///
    /// # Errors
    ///
    /// [`TeiError::Fabric`] naming the first missing run — a `Done`
    /// lease with unjournaled runs means a journal was deleted or the
    /// table is lying, either way not something to paper over.
    pub fn verify_against(&self, journaled: &HashSet<u64>) -> Result<(), TeiError> {
        for e in &self.entries {
            if e.state != LeaseState::Done {
                continue;
            }
            for run in e.lease.lo..e.lease.hi {
                if !journaled.contains(&run) {
                    return Err(TeiError::Fabric {
                        detail: format!(
                            "lease table marks lease {} ([{}, {})) done but run {run} \
                             is in no journal; a journal file was lost",
                            e.lease.id, e.lease.lo, e.lease.hi
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// The table's on-disk path under `dir`.
    pub fn path(dir: &Path, manifest: &CampaignManifest) -> PathBuf {
        dir.join(manifest.lease_file_name())
    }

    /// Persist atomically (with a `.fnv` sidecar) next to the journals.
    ///
    /// # Errors
    ///
    /// [`TeiError::Io`] on filesystem failures.
    pub fn save(&self, dir: &Path, manifest: &CampaignManifest) -> Result<(), TeiError> {
        let body = serde_json::to_string_pretty(self).unwrap_or_default();
        atomic_write_checksummed(&Self::path(dir, manifest), (body + "\n").as_bytes())?;
        Ok(())
    }

    /// Load the persisted table, if any. Grants do not survive a
    /// coordinator restart, so `Granted` entries demote to `Pending`.
    ///
    /// # Errors
    ///
    /// [`TeiError::Io`] on read failures, [`TeiError::Fabric`] for an
    /// unparsable table, and [`TeiError::ManifestMismatch`] when the
    /// table belongs to a different campaign.
    pub fn load(dir: &Path, manifest: &CampaignManifest) -> Result<Option<LeaseTable>, TeiError> {
        let path = Self::path(dir, manifest);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(TeiError::io("read lease table", &path, e)),
        };
        let text = String::from_utf8(bytes).map_err(|e| TeiError::Fabric {
            detail: format!("unparsable lease table {}: {e}", path.display()),
        })?;
        let mut table: LeaseTable = serde_json::from_str(&text).map_err(|e| TeiError::Fabric {
            detail: format!("unparsable lease table {}: {e}", path.display()),
        })?;
        let expected = manifest.hash();
        if table.manifest_hash != expected {
            return Err(TeiError::ManifestMismatch {
                path,
                expected,
                found: table.manifest_hash,
            });
        }
        for e in &mut table.entries {
            if matches!(e.state, LeaseState::Granted { .. }) {
                e.state = LeaseState::Pending;
            }
        }
        Ok(Some(table))
    }
}

#[cfg(test)]
mod tests {
    // Tests should panic loudly, not thread errors.
    #![allow(clippy::disallowed_methods)]

    use super::*;

    fn manifest(runs: u64) -> CampaignManifest {
        CampaignManifest {
            version: 1,
            benchmark: "is".into(),
            model: "DA-model".into(),
            vr: "VR20".into(),
            runs,
            seed: 42,
            timeout_factor_bits: 2.0f64.to_bits(),
            golden_instructions: 1000,
            golden_fp_ops: 100,
            golden_output_fnv: 7,
            model_fingerprint: 9,
        }
    }

    #[test]
    fn partition_covers_missing_exactly() {
        let m = manifest(100);
        // Missing runs with a completed gap in the middle.
        let missing: Vec<u64> = (0..40).chain(60..100).collect();
        let t = LeaseTable::partition(&m, &missing, 8);
        let mut covered = HashSet::new();
        for e in &t.entries {
            assert!(!e.lease.is_empty());
            assert_eq!(e.state, LeaseState::Pending);
            for r in e.lease.lo..e.lease.hi {
                assert!(covered.insert(r), "run {r} leased twice");
            }
        }
        let want: HashSet<u64> = missing.iter().copied().collect();
        assert_eq!(covered, want);
        assert_eq!(t.already_complete, 20);
        // No lease straddles the completed gap.
        assert!(t
            .entries
            .iter()
            .all(|e| e.lease.hi <= 40 || e.lease.lo >= 60));
        // Roughly the requested granularity.
        assert!(
            t.entries.len() >= 8 && t.entries.len() <= 10,
            "{}",
            t.entries.len()
        );
    }

    #[test]
    fn grant_complete_demote_lifecycle() {
        let m = manifest(10);
        let missing: Vec<u64> = (0..10).collect();
        let mut t = LeaseTable::partition(&m, &missing, 2);
        let a = t.next_pending().unwrap();
        t.grant(a.id, 0);
        let b = t.next_pending().unwrap();
        assert_ne!(a.id, b.id);
        t.grant(b.id, 1);
        assert!(t.next_pending().is_none());
        // Worker 0 dies: its lease is pending again.
        assert_eq!(t.demote_worker(0), 1);
        assert_eq!(t.next_pending().unwrap().id, a.id);
        t.grant(a.id, 1);
        assert!(t.complete(a.id));
        assert!(!t.complete(a.id), "double completion must be idempotent");
        assert!(t.complete(b.id));
        assert!(t.all_done());
        assert_eq!(t.completed_runs(), 10);
    }

    #[test]
    fn persistence_checks_fingerprint() {
        let dir = std::env::temp_dir().join(format!("tei-lease-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let m = manifest(10);
        let missing: Vec<u64> = (0..10).collect();
        let mut t = LeaseTable::partition(&m, &missing, 2);
        let first = t.next_pending().unwrap();
        t.grant(first.id, 3);
        t.save(&dir, &m).unwrap();
        let loaded = LeaseTable::load(&dir, &m).unwrap().unwrap();
        // Grants do not survive a restart.
        assert_eq!(loaded.next_pending().unwrap().id, first.id);
        // A different campaign's table is refused.
        let other = manifest(11);
        std::fs::copy(LeaseTable::path(&dir, &m), LeaseTable::path(&dir, &other)).unwrap();
        let err = LeaseTable::load(&dir, &other).unwrap_err();
        assert!(matches!(err, TeiError::ManifestMismatch { .. }));
        // Done leases must be backed by journaled runs.
        t.complete(first.id);
        let journaled: HashSet<u64> = (first.lo..first.hi).collect();
        t.verify_against(&journaled).unwrap();
        assert!(t.verify_against(&HashSet::new()).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
