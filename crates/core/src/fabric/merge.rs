//! Deterministic merge of per-worker journals.
//!
//! The determinism argument, in full:
//!
//! 1. Every run's derived seed is `cell_seed ^ (run << 20)` — a pure
//!    function of the campaign manifest and the run index, independent
//!    of which process, thread, lease, or resume session executes it.
//! 2. Given the seed, the draw is deterministic; given the draw, the
//!    replayed outcome is deterministic (the `replay_equivalence` suite
//!    proves this across engines and thread counts). So any two journal
//!    records for the same run under the same manifest are
//!    **byte-identical** — including quarantine records, whose chaos
//!    hooks key on the run index.
//! 3. [`OutcomeCounts`] is a bundle of commutative sums over run
//!    indices, so folding the records in any order — here, ascending
//!    run order out of a `BTreeMap` — yields the same tally.
//!
//! Therefore merging K per-worker journals produces the same
//! `OutcomeCounts` as one single-process journal, for every worker
//! count, lease schedule, and crash/resume history. Duplicate records
//! (a worker died mid-lease, the lease was re-executed elsewhere) are
//! deduplicated by byte-equality; a *conflicting* duplicate cannot come
//! from the same manifest and is refused as corruption, never averaged
//! away.

use crate::campaign::{
    absorb_record, model_error_ratio, CampaignResult, GoldenRun, OutcomeCounts, QuarantinedRun,
};
use crate::error::TeiError;
use crate::journal::{CampaignManifest, Journal, RunRecord};
use crate::models::InjectionModel;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Everything a journal scan produced.
#[derive(Debug, Default)]
pub struct MergedJournals {
    /// One record per completed run, keyed (and ordered) by run index.
    pub records: BTreeMap<u64, RunRecord>,
    /// The journal files that contributed.
    pub scanned: Vec<PathBuf>,
    /// Identical cross-journal duplicates dropped (reassigned leases).
    pub duplicates: u64,
}

impl MergedJournals {
    /// Run indices still missing from `0..runs`.
    pub fn missing(&self, runs: u64) -> Vec<u64> {
        (0..runs)
            .filter(|r| !self.records.contains_key(r))
            .collect()
    }

    /// Fold the records into the final tally, ascending run order.
    pub fn fold(&self) -> (OutcomeCounts, Vec<QuarantinedRun>) {
        let mut counts = OutcomeCounts::default();
        let mut quarantined = Vec::new();
        for rec in self.records.values() {
            absorb_record(&mut counts, &mut quarantined, rec);
        }
        (counts, quarantined)
    }
}

/// Every journal file of this campaign under `dir`: the single-process
/// journal (if any) plus every per-worker journal, in deterministic
/// (sorted) order. A missing directory is an empty campaign, not an
/// error.
///
/// # Errors
///
/// [`TeiError::Io`] when the directory exists but cannot be listed.
pub fn journal_paths(dir: &Path, manifest: &CampaignManifest) -> Result<Vec<PathBuf>, TeiError> {
    let base = manifest.file_name();
    // "<slug>-<hash>" + ".w<idx>.tei-journal"
    let worker_prefix = format!(
        "{}.w",
        base.strip_suffix(".tei-journal").unwrap_or(base.as_str())
    );
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(TeiError::io("list journal dir", dir, e)),
    };
    let mut paths = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| TeiError::io("list journal dir", dir, e))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let is_worker = name.starts_with(&worker_prefix)
            && name.ends_with(".tei-journal")
            && name[worker_prefix.len()..name.len() - ".tei-journal".len()]
                .chars()
                .all(|c| c.is_ascii_digit());
        if name == base || is_worker {
            paths.push(entry.path());
        }
    }
    paths.sort();
    Ok(paths)
}

/// Scan every journal of the campaign under `dir` read-only and merge
/// their records. Torn tails are tolerated (the records before them
/// count); foreign manifests are refused; conflicting records for the
/// same run are corruption.
///
/// # Errors
///
/// [`TeiError::Io`] / [`TeiError::JournalCorrupt`] /
/// [`TeiError::ManifestMismatch`] from the per-journal replay, and
/// [`TeiError::Fabric`] for cross-journal record conflicts or
/// out-of-range runs.
pub fn scan_journals(dir: &Path, manifest: &CampaignManifest) -> Result<MergedJournals, TeiError> {
    let mut merged = MergedJournals::default();
    for path in journal_paths(dir, manifest)? {
        let records = Journal::replay_readonly(&path, manifest)?;
        for rec in records {
            if rec.run >= manifest.runs {
                return Err(TeiError::Fabric {
                    detail: format!(
                        "journal {} holds run {} beyond the campaign's {} runs",
                        path.display(),
                        rec.run,
                        manifest.runs
                    ),
                });
            }
            match merged.records.get(&rec.run) {
                None => {
                    merged.records.insert(rec.run, rec);
                }
                Some(prev) if *prev == rec => merged.duplicates += 1,
                Some(prev) => {
                    return Err(TeiError::Fabric {
                        detail: format!(
                            "conflicting records for run {} (journal {}): {:?} vs {:?} — \
                             same-manifest runs are deterministic, so this is corruption",
                            rec.run,
                            path.display(),
                            prev.outcome,
                            rec.outcome
                        ),
                    })
                }
            }
        }
        merged.scanned.push(path);
    }
    Ok(merged)
}

/// Merge a completed campaign's journals into its final
/// [`CampaignResult`], refusing incomplete coverage.
///
/// # Errors
///
/// Everything [`scan_journals`] surfaces, plus [`TeiError::Fabric`]
/// when runs are missing (the campaign is not actually finished).
pub fn merged_result<M: InjectionModel + ?Sized>(
    benchmark_name: &str,
    golden: &GoldenRun,
    model: &M,
    manifest: &CampaignManifest,
    dir: &Path,
) -> Result<CampaignResult, TeiError> {
    let merged = scan_journals(dir, manifest)?;
    let missing = merged.missing(manifest.runs);
    if !missing.is_empty() {
        return Err(TeiError::Fabric {
            detail: format!(
                "merge refused: {} of {} runs missing from the journals (first: {})",
                missing.len(),
                manifest.runs,
                missing[0]
            ),
        });
    }
    let (counts, quarantined) = merged.fold();
    Ok(CampaignResult {
        benchmark: benchmark_name.to_string(),
        model: model.name().to_string(),
        vr: model.vr(),
        counts,
        error_ratio: model_error_ratio(model, golden),
        quarantined,
    })
}
