//! The fabric's wire protocol: length-prefixed, FNV-checksummed frames
//! carrying JSON-encoded messages, over any byte stream (localhost TCP
//! here; the framing is transport-agnostic).
//!
//! ```text
//! frame := len:u32le payload:[u8; len] fnv64(payload):u64le
//! ```
//!
//! This is deliberately the same frame shape as the journal's on-disk
//! records — one framing discipline, two substrates. No external
//! protocol dependency is involved: frames are hand-rolled over
//! `std::net`, and payloads use the already-vendored `serde_json`.

use crate::error::TeiError;
use crate::fabric::CampaignSpec;
use crate::journal::fnv64;
use serde::{Deserialize, Serialize};
use std::io::{ErrorKind, Read, Write};

/// Largest accepted frame payload; a bigger length prefix is a corrupt
/// or hostile frame, not a real message.
pub const MAX_FRAME: usize = 1 << 20;

/// Every message the fabric exchanges. One flat enum keeps the protocol
/// auditable in a single place; direction is documented per variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// Worker → coordinator: first message on a worker connection. The
    /// token must match the one the coordinator minted for this fleet.
    Hello {
        /// Spawn token (anti-cross-talk for stray local connections).
        token: u64,
        /// Worker index (stable across the fleet; names the journal).
        worker: u32,
    },
    /// Coordinator → worker: establish a campaign context. The worker
    /// resolves the spec independently and answers with [`Message::Ready`].
    Launch {
        /// Coordinator-assigned campaign id.
        campaign: u64,
        /// The campaign to prepare for.
        spec: CampaignSpec,
    },
    /// Worker → coordinator: context built; `manifest_hash` is the
    /// worker's own derivation, cross-checked against the coordinator's
    /// to refuse binary/netlist drift between processes.
    Ready {
        /// Campaign id from [`Message::Launch`].
        campaign: u64,
        /// Hash of the worker's independently derived manifest.
        manifest_hash: u64,
    },
    /// Coordinator → worker: execute runs `[lo, hi)` of the campaign.
    Grant {
        /// Campaign id.
        campaign: u64,
        /// Lease id (echoed back in [`Message::LeaseDone`]).
        lease: u64,
        /// First run index of the lease.
        lo: u64,
        /// One past the last run index.
        hi: u64,
    },
    /// Worker → coordinator: the leased range is durably journaled.
    LeaseDone {
        /// Campaign id.
        campaign: u64,
        /// Lease id.
        lease: u64,
        /// Runs newly executed under this lease.
        completed: u64,
    },
    /// Worker → coordinator: a lease failed in a way the worker could
    /// type (config drift, journal refusal). The coordinator treats the
    /// worker as poisoned and reassigns its leases.
    WorkerError {
        /// What failed.
        detail: String,
    },
    /// Coordinator → worker: drop the per-campaign context (journal
    /// handle, skip set); the campaign is merged and finished.
    Retire {
        /// Campaign id.
        campaign: u64,
    },
    /// Coordinator → worker: exit cleanly.
    Shutdown,
    /// Client → server: queue a campaign.
    Submit {
        /// The campaign to run.
        spec: CampaignSpec,
    },
    /// Server → client: the campaign is queued under this id.
    Accepted {
        /// Server-assigned campaign id.
        campaign: u64,
    },
    /// Server → client: the submission was rejected.
    Refused {
        /// Why.
        detail: String,
    },
    /// Server → client: progress stream (sent after every lease).
    Progress {
        /// Campaign id.
        campaign: u64,
        /// Runs durably recorded so far.
        completed: u64,
        /// Total runs requested.
        total: u64,
    },
    /// Server → client: the campaign finished; `result` is the
    /// serialized [`CampaignResult`](crate::campaign::CampaignResult).
    Finished {
        /// Campaign id.
        campaign: u64,
        /// `serde_json`-encoded campaign result.
        result: String,
    },
}

/// Write one frame. The caller flushes (TCP streams are unbuffered
/// here, so a frame is pushed immediately).
///
/// # Errors
///
/// Any transport write failure.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    let mut buf = Vec::with_capacity(payload.len() + 12);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    buf.extend_from_slice(&fnv64(payload).to_le_bytes());
    w.write_all(&buf)
}

/// Read one frame. `Ok(None)` when the peer closed the stream (at a
/// frame boundary or mid-frame — a dead peer is a dead peer); a
/// checksum mismatch or oversized length is an `InvalidData` error.
///
/// # Errors
///
/// Transport read failures, or `InvalidData` for corrupt frames.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    let mut sum = [0u8; 8];
    match r
        .read_exact(&mut payload)
        .and_then(|()| r.read_exact(&mut sum))
    {
        Ok(()) => {}
        Err(e) if e.kind() == ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    if fnv64(&payload) != u64::from_le_bytes(sum) {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            "frame checksum mismatch",
        ));
    }
    Ok(Some(payload))
}

/// Send one message as a JSON-encoded frame.
///
/// # Errors
///
/// [`TeiError::Fabric`] on transport failure.
pub fn send(w: &mut impl Write, peer: &str, msg: &Message) -> Result<(), TeiError> {
    let payload = serde_json::to_string(msg).map_err(|e| TeiError::Fabric {
        detail: format!("encode message for {peer}: {e}"),
    })?;
    write_frame(w, payload.as_bytes()).map_err(|e| TeiError::Fabric {
        detail: format!("send to {peer}: {e}"),
    })
}

/// Receive one message. `Ok(None)` when the peer closed the stream.
///
/// # Errors
///
/// [`TeiError::Protocol`] for corrupt frames or undecodable messages,
/// [`TeiError::Fabric`] for transport failures.
pub fn recv(r: &mut impl Read, peer: &str) -> Result<Option<Message>, TeiError> {
    let frame = match read_frame(r) {
        Ok(f) => f,
        Err(e) if e.kind() == ErrorKind::InvalidData => {
            return Err(TeiError::Protocol {
                peer: peer.to_string(),
                detail: e.to_string(),
            })
        }
        Err(e) => {
            return Err(TeiError::Fabric {
                detail: format!("receive from {peer}: {e}"),
            })
        }
    };
    match frame {
        None => Ok(None),
        Some(payload) => std::str::from_utf8(&payload)
            .map_err(|e| TeiError::Protocol {
                peer: peer.to_string(),
                detail: format!("non-UTF-8 message payload: {e}"),
            })
            .and_then(|text| {
                serde_json::from_str(text).map_err(|e| TeiError::Protocol {
                    peer: peer.to_string(),
                    detail: format!("undecodable message: {e}"),
                })
            })
            .map(Some),
    }
}

#[cfg(test)]
mod tests {
    // Tests should panic loudly, not thread errors.
    #![allow(clippy::disallowed_methods)]

    use super::*;

    #[test]
    fn frame_roundtrip_and_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap(), None);
        // A torn tail reads as peer-closed, like a killed worker's socket.
        let mut torn = &buf[..buf.len() - 3];
        assert_eq!(
            read_frame(&mut torn).unwrap().as_deref(),
            Some(&b"hello"[..])
        );
        assert_eq!(read_frame(&mut torn).unwrap(), None);
    }

    #[test]
    fn corrupt_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        let mid = buf.len() / 2;
        buf[mid] ^= 0x40;
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
    }

    #[test]
    fn message_roundtrip() {
        let msgs = [
            Message::Hello {
                token: 7,
                worker: 2,
            },
            Message::Grant {
                campaign: 1,
                lease: 3,
                lo: 100,
                hi: 250,
            },
            Message::Submit {
                spec: CampaignSpec::new("sobel"),
            },
            Message::Shutdown,
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            send(&mut buf, "test", m).unwrap();
        }
        let mut r = &buf[..];
        for m in &msgs {
            assert_eq!(recv(&mut r, "test").unwrap().as_ref(), Some(m));
        }
        assert_eq!(recv(&mut r, "test").unwrap(), None);
    }
}
