//! Model development phase: dynamic timing analysis campaigns over the
//! gate-level FPU units, producing the per-bit error statistics and bitmask
//! libraries the injection models are built from (paper Section III.A).

use crate::config;
use crate::error::TeiError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use tei_fpu::{FpuBank, FpuTimingSpec, FpuUnit};
use tei_isa::Program;
use tei_netlist::NetId;
use tei_softfloat::{FpOp, FpOpKind};
use tei_timing::{interpreted_engine, ArrivalEngine, CompiledNetlist, VoltageReduction};
use tei_uarch::FuncCore;

/// Per-operation operand trace: consecutive `(a, b)` raw-bit pairs in
/// execution order, as seen by that operation's functional unit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceSet {
    per_op: Vec<Vec<(u64, u64)>>,
}

impl Default for TraceSet {
    fn default() -> Self {
        TraceSet {
            per_op: vec![Vec::new(); 12],
        }
    }
}

impl TraceSet {
    /// Extract the FP operand trace of a program by instrumented functional
    /// execution, keeping at most `cap` pairs per operation type.
    pub fn capture(program: &Program, mem_bytes: usize, max_steps: u64, cap: usize) -> Self {
        let mut per_op: Vec<Vec<(u64, u64)>> = vec![Vec::new(); 12];
        let mut core = FuncCore::with_memory(program, mem_bytes);
        // Reservoir-free capture: keep the first `cap` pairs (the paper
        // randomly extracts 1 M; execution order preserves the consecutive
        // same-unit previous-state semantics DTA needs).
        core.run_with_hook(max_steps, &mut |ev| {
            let slot = &mut per_op[ev.op.index()];
            if slot.len() < cap {
                slot.push((ev.a, ev.b));
            }
            ev.result
        });
        TraceSet { per_op }
    }

    /// The trace of one operation type.
    pub fn of(&self, op: FpOp) -> &[(u64, u64)] {
        &self.per_op[op.index()]
    }

    /// Total captured pairs.
    pub fn len(&self) -> usize {
        self.per_op.iter().map(Vec::len).sum()
    }

    /// True if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merge another trace set into this one (same caps not enforced).
    pub fn merge(&mut self, other: &TraceSet) {
        assert_eq!(self.per_op.len(), other.per_op.len(), "trace arity");
        for (dst, src) in self.per_op.iter_mut().zip(&other.per_op) {
            dst.extend_from_slice(src);
        }
    }
}

/// Uniform random operand pairs for one operation type (the IA model's
/// characterization kernels with randomized inputs).
pub fn random_operand_pairs(op: FpOp, count: usize, seed: u64) -> Vec<(u64, u64)> {
    let mut rng = StdRng::seed_from_u64(seed ^ (op.index() as u64) << 32);
    let fmt = op.format();
    let mask = if fmt.width() == 64 {
        u64::MAX
    } else {
        (1u64 << fmt.width()) - 1
    };
    let gen = |rng: &mut StdRng| -> u64 {
        match op.kind {
            FpOpKind::ItoF => {
                let bits = rng.gen_range(1..=op.precision.int_bits() as u64);
                let raw = rng.gen::<u64>() >> (64 - bits);
                if rng.gen() {
                    (raw as i64).wrapping_neg() as u64
                        & if op.precision.int_bits() == 32 {
                            0xffff_ffff
                        } else {
                            u64::MAX
                        }
                } else {
                    raw
                }
            }
            _ => rng.gen::<u64>() & mask,
        }
    };
    (0..count)
        .map(|_| {
            let a = gen(&mut rng);
            let b = if op.is_binary() { gen(&mut rng) } else { 0 };
            (a, b)
        })
        .collect()
}

/// DTA-derived error statistics of one operation type at one VR level.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpErrorStats {
    /// The characterized operation.
    pub op: FpOp,
    /// Voltage-reduction level.
    pub vr: VoltageReduction,
    /// Operand pairs analyzed.
    pub samples: u64,
    /// Pairs whose output had at least one corrupted bit.
    pub faulty: u64,
    /// Per-output-bit error counts (LSB first) — the BER numerators.
    pub bit_errors: Vec<u64>,
    /// Library of observed error bitmasks (with multiplicity, capped).
    pub masks: Vec<u64>,
    /// Histogram of flipped-bit counts among faulty outputs (Figure 5).
    pub flip_hist: BTreeMap<usize, u64>,
}

impl OpErrorStats {
    /// Instruction-level error ratio (paper eq. 2 restricted to this type).
    pub fn error_ratio(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.faulty as f64 / self.samples as f64
        }
    }

    /// Per-bit error ratios (BER), LSB first.
    pub fn ber(&self) -> Vec<f64> {
        self.bit_errors
            .iter()
            .map(|&c| {
                if self.samples == 0 {
                    0.0
                } else {
                    c as f64 / self.samples as f64
                }
            })
            .collect()
    }

    /// An empty stats record for `(op, vr)` with `width` output bits.
    fn empty(op: FpOp, vr: VoltageReduction, width: usize) -> Self {
        OpErrorStats {
            op,
            vr,
            samples: 0,
            faulty: 0,
            bit_errors: vec![0; width],
            masks: Vec::new(),
            flip_hist: BTreeMap::new(),
        }
    }

    /// Fold `other` into `self` deterministically: counts add (they are
    /// associative), the mask library concatenates in call order, and the
    /// flip histogram sums per bucket. Merging per-shard stats in shard
    /// order therefore reproduces the serial campaign exactly.
    ///
    /// # Panics
    ///
    /// Panics when the records describe different `(op, vr)` cells or
    /// output widths.
    pub fn merge(&mut self, other: &OpErrorStats) {
        assert_eq!(self.op, other.op, "merging stats of different ops");
        assert_eq!(self.vr, other.vr, "merging stats of different VR levels");
        assert_eq!(
            self.bit_errors.len(),
            other.bit_errors.len(),
            "merging stats of different output widths"
        );
        self.samples += other.samples;
        self.faulty += other.faulty;
        for (dst, &src) in self.bit_errors.iter_mut().zip(&other.bit_errors) {
            *dst += src;
        }
        self.masks.extend_from_slice(&other.masks);
        for (&flips, &count) in &other.flip_hist {
            *self.flip_hist.entry(flips).or_default() += count;
        }
    }
}

/// Maximum retained masks per (op, VR) — enough for faithful empirical
/// sampling without unbounded memory. Libraries over the cap are reduced
/// by seeded reservoir sampling (not first-N truncation, which would
/// over-weight early-trace behavior).
const MASK_CAP: usize = 50_000;

/// Which arrival-engine implementation drives a campaign's inner loop.
/// A pure throughput knob: both engines are proven byte-identical (the
/// generated kernel is emitted from the same [`CompiledNetlist`] the
/// interpreter walks, and the equivalence suite asserts bit-exact
/// settle times), so statistics never depend on the choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelBackend {
    /// Use the netlist-specialized generated kernel where it is the
    /// measured winner (lane width >= 4) and a fresh one is registered
    /// for the unit (tag *and* netlist fingerprint match), falling
    /// back to the interpreted [`tei_timing::ArrivalKernel`] otherwise
    /// (including always at `W = 1`, where the interpreter's sparse
    /// walk wins — see [`dta_engine`]).
    #[default]
    Auto,
    /// Always the interpreted kernel — the universal fallback that
    /// handles runtime-parsed netlists and the `interp` ablation side.
    Interpreter,
    /// Require the generated kernel; campaigns over units without a
    /// fresh generated kernel fail with a config error instead of
    /// silently degrading (`TEI_KERNEL=codegen`).
    Generated,
}

/// Policy for the static-slack safe-bit skip of the DTA inner loop.
///
/// The skip is exact, not approximate: dynamic settle times never
/// exceed the static bound (the `sanitize-arrivals` feature asserts
/// this), and the campaign's nominal clamp only lowers them further, so
/// a statically-safe bit can never contribute to an error mask. Whether
/// it *pays* is a different question: when the oracle proves almost
/// nothing safe (the shipped FPU adders at VR15/VR20 prove 2 of 128
/// result bits), the filtered live-bit lists are nearly full-length and
/// the bookkeeping overhead eats the savings — the `pruning` ablation
/// in `BENCH_dta.json` measured 0.995x, a regression dressed up as an
/// optimization. [`PrunePolicy::Auto`] therefore consults the measured
/// break-even fraction instead of pruning unconditionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrunePolicy {
    /// Prune only when the oracle proves at least
    /// [`PRUNE_MIN_SAFE_FRACTION`] of the thresholded bits safe.
    #[default]
    Auto,
    /// Always prune (the pre-decision behavior; ablation use).
    ForceOn,
    /// Never prune (ablation use).
    ForceOff,
}

/// Minimum fraction of (bit, corner) threshold work the static oracle
/// must eliminate for [`PrunePolicy::Auto`] to enable pruning. Below
/// this the filtered list is effectively the full list and the skip is
/// measured overhead, not savings (`pruning_speedup` 0.995x at 1.6%
/// safe in `BENCH_dta.json`); one-sixteenth is comfortably past
/// break-even while still letting genuinely prunable corners benefit.
pub const PRUNE_MIN_SAFE_FRACTION: f64 = 1.0 / 16.0;

/// The resolved pruning choice for one campaign, recorded so benches
/// and logs report what actually ran instead of what was requested.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PruneDecision {
    /// Whether the inner loop skips statically-safe bits.
    pub enabled: bool,
    /// Fraction of (bit, corner) pairs the oracle proves safe.
    pub safe_fraction: f64,
    /// The policy the decision was resolved from.
    pub policy: PrunePolicy,
}

/// Resolve a [`PrunePolicy`] against the static slack oracle for `unit`
/// at clock `clk` over the campaign's corners. Pruning is exact at any
/// setting, so the decision can never change statistics — only whether
/// the inner loop carries the filtered-list bookkeeping.
pub fn resolve_prune(
    unit: &FpuUnit,
    clk: f64,
    levels: &[VoltageReduction],
    policy: PrunePolicy,
) -> PruneDecision {
    let safe: usize = safe_bit_counts(unit, clk, levels).iter().sum();
    let total = unit.result_port().len() * levels.len();
    let safe_fraction = if total == 0 {
        0.0
    } else {
        safe as f64 / total as f64
    };
    let enabled = match policy {
        PrunePolicy::ForceOn => true,
        PrunePolicy::ForceOff => false,
        PrunePolicy::Auto => safe_fraction >= PRUNE_MIN_SAFE_FRACTION,
    };
    PruneDecision {
        enabled,
        safe_fraction,
        policy,
    }
}

/// Measured lane-width preference of the interpreted kernel, best
/// first (`BENCH_dta.json` lanes ablation: W4 119k, W8 115k, W1 77k
/// pairs/s — W8's extra settle planes thrash the interpreter's cache).
pub const INTERP_LANE_ORDER: [usize; 3] = [4, 8, 1];

/// Measured lane-width preference of the generated kernel, best first
/// (`BENCH_dta.json` codegen ablation: W8 263k, W4 142k, W1 61k
/// pairs/s — the specialized dense sweep keeps scaling past W4).
pub const CODEGEN_LANE_ORDER: [usize; 3] = [8, 4, 1];

/// Resolve a requested lane width (`None` = auto) to a concrete one by
/// consulting the measured per-backend ordering: the engine that will
/// actually run decides, so auto no longer hands the interpreter's
/// best width to the generated kernel or vice versa. `fresh_kernel` is
/// whether [`tei_kernels::registry`] holds a fingerprint-fresh kernel
/// for the unit (i.e. whether [`KernelBackend::Auto`] dispatches to
/// the generated kernel at W >= 4).
pub fn resolve_lanes(
    requested: Option<usize>,
    backend: KernelBackend,
    fresh_kernel: bool,
) -> usize {
    if let Some(lanes) = requested {
        return lanes;
    }
    let generated = match backend {
        KernelBackend::Generated => true,
        KernelBackend::Auto => fresh_kernel,
        KernelBackend::Interpreter => false,
    };
    if generated {
        CODEGEN_LANE_ORDER[0]
    } else {
        INTERP_LANE_ORDER[0]
    }
}

/// Tuning knobs of the DTA campaign inner loop. Tuning never changes
/// the produced statistics — only how much work the inner loop performs
/// and how wide its windows are.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DtaTuning {
    /// Safe-bit pruning policy (see [`PrunePolicy`]; the default
    /// [`PrunePolicy::Auto`] prunes only past the measured break-even
    /// fraction).
    pub prune: PrunePolicy,
    /// Window lane words of the bit-sliced kernel: 1, 4, or 8 `u64`s
    /// per net, i.e. 64 / 256 / 512 input vectors per whole-circuit
    /// evaluation pass (see [`tei_timing::ArrivalKernel`]). `None`
    /// (the default unless `TEI_LANES` forces a width) picks the
    /// measured-best width for the backend that will actually run —
    /// see [`resolve_lanes`]. Campaign statistics are bit-identical at
    /// every width.
    pub lanes: Option<usize>,
    /// Arrival-engine backend (see [`KernelBackend`]). Defaults to
    /// [`config::default_backend`] (`TEI_KERNEL`, auto when unset).
    pub backend: KernelBackend,
}

impl Default for DtaTuning {
    fn default() -> Self {
        DtaTuning {
            prune: PrunePolicy::Auto,
            lanes: config::default_lanes(),
            backend: config::default_backend(),
        }
    }
}

/// Construct the arrival engine that drives DTA over `unit` at `lanes`
/// lane words under the given backend policy — the single dispatch
/// point shared by the campaign entry points, the throughput bench's
/// backend ablation, and the `tei codegen` CLI checks.
///
/// # Errors
///
/// [`TeiError::Config`] for a lane width outside
/// [`config::SUPPORTED_LANES`], or when [`KernelBackend::Generated`] is
/// requested but no fresh generated kernel exists for the unit.
pub fn dta_engine<'u>(
    unit: &'u FpuUnit,
    lanes: usize,
    backend: KernelBackend,
) -> Result<Box<dyn ArrivalEngine + 'u>, TeiError> {
    if !config::SUPPORTED_LANES.contains(&lanes) {
        return Err(TeiError::Config {
            knob: "TEI_LANES".to_string(),
            reason: format!("unsupported lane width {lanes} (supported: 1, 4, 8)"),
        });
    }
    let interp =
        || interpreted_engine(unit.dta_compiled(), lanes).expect("lane width validated above");
    match backend {
        KernelBackend::Interpreter => Ok(interp()),
        // Auto picks the measured winner per lane width: at W = 1 a
        // single-transition batch toggles ~40% of the nets, under the
        // interpreter's sparse-walk threshold, so its changed-list walk
        // beats the specialized kernel's always-dense sweep (~0.8x in
        // the BENCH_dta.json `codegen` ablation); at W >= 4 the union
        // is dense and the generated kernel wins (1.2x at 4, 2.2x at
        // 8). `TEI_KERNEL=codegen` still forces the generated kernel
        // at any width.
        KernelBackend::Auto if lanes < 4 => Ok(interp()),
        KernelBackend::Auto => Ok(tei_kernels::registry()
            .make_engine(unit, lanes)
            .map(|e| e as Box<dyn ArrivalEngine + 'u>)
            .unwrap_or_else(interp)),
        KernelBackend::Generated => tei_kernels::registry()
            .make_engine(unit, lanes)
            .map(|e| e as Box<dyn ArrivalEngine + 'u>)
            .ok_or_else(|| TeiError::Config {
                knob: "TEI_KERNEL".to_string(),
                reason: format!(
                    "no fresh generated kernel for unit {} (stale fingerprint or \
                     unregistered netlist); use `auto` or `interp`",
                    unit.tag()
                ),
            }),
    }
}

/// Per-corner live output bits: the `(bit, net)` pairs the inner loop
/// must actually threshold. With pruning on, bits whose static arrival
/// bound keeps them inside the clock period at that corner are dropped.
fn live_bits(
    compiled: &CompiledNetlist,
    outputs: &[NetId],
    factors: &[f64],
    clk: f64,
    prune: bool,
) -> Vec<Vec<(usize, NetId)>> {
    factors
        .iter()
        .map(|&k| {
            outputs
                .iter()
                .enumerate()
                .filter(|&(_, &net)| !prune || compiled.static_bound(net) * k > clk)
                .map(|(bit, &net)| (bit, net))
                .collect()
        })
        .collect()
}

/// Output bits per VR level that the static slack oracle proves safe for
/// `unit` at clock period `clk` — the work [`DtaTuning::prune_safe_bits`]
/// removes from every transition of a campaign.
pub fn safe_bit_counts(unit: &FpuUnit, clk: f64, levels: &[VoltageReduction]) -> Vec<usize> {
    let compiled = unit.dta_compiled();
    let outputs = unit.result_port();
    levels
        .iter()
        .map(|vr| {
            let k = vr.derating_factor();
            outputs
                .iter()
                .filter(|&&net| compiled.static_bound(net) * k <= clk)
                .count()
        })
        .collect()
}

/// Per-transition stats accumulation shared by the full and sampled
/// campaigns (and every shard of the parallel paths): threshold the
/// settle time of each live output bit at every requested corner and
/// update counts, the mask library, and the flip histogram.
///
/// At the nominal corner the fabricated design meets timing by
/// construction, so settle times beyond the clock (γ-calibration tail
/// noise) are clamped to the clock period: they fail under any voltage
/// reduction but never at nominal. Masks accumulate uncapped here;
/// [`finalize_masks`] applies the reservoir cap after shards merge.
fn accumulate_transition(
    stats: &mut [OpErrorStats],
    factors: &[f64],
    live: &[Vec<(usize, NetId)>],
    outputs: &[NetId],
    clk: f64,
    engine: &dyn ArrivalEngine,
) {
    #[cfg(not(feature = "sanitize-arrivals"))]
    let _ = outputs;
    for ((s, &k), bits) in stats.iter_mut().zip(factors).zip(live) {
        s.samples += 1;
        let mut mask = 0u64;
        for &(bit, net) in bits {
            let settle = engine.settle_of(net).min(clk); // nominal clamp
            if settle * k > clk {
                mask |= 1 << bit;
                s.bit_errors[bit] += 1;
            }
        }
        // Cross-check the pruned mask against the full bit scan: the
        // static oracle must never have removed an erring bit.
        #[cfg(feature = "sanitize-arrivals")]
        {
            let mut full = 0u64;
            for (bit, &net) in outputs.iter().enumerate() {
                if engine.settle_of(net).min(clk) * k > clk {
                    full |= 1 << bit;
                }
            }
            assert_eq!(
                full, mask,
                "sanitize-arrivals: safe-bit pruning changed an error mask"
            );
        }
        if mask != 0 {
            s.faulty += 1;
            *s.flip_hist.entry(mask.count_ones() as usize).or_default() += 1;
            s.masks.push(mask);
        }
    }
}

/// Reduce oversized mask libraries to `cap` entries with in-place
/// Algorithm-R reservoir sampling, seeded from the `(op, vr)` cell so
/// the subsample is reproducible and identical between the serial and
/// sharded campaign paths.
fn finalize_masks_with_cap(stats: &mut [OpErrorStats], cap: usize) {
    for s in stats {
        if s.masks.len() <= cap {
            continue;
        }
        let seed = 0x6d61_736b_5245_5356u64
            ^ ((s.op.index() as u64) << 32)
            ^ (s.vr.fraction() * 1e6) as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        for i in cap..s.masks.len() {
            let j = rng.gen_range(0..=i);
            if j < cap {
                s.masks[j] = s.masks[i];
            }
        }
        s.masks.truncate(cap);
    }
}

fn finalize_masks(stats: &mut [OpErrorStats]) {
    finalize_masks_with_cap(stats, MASK_CAP);
}

fn empty_stats(unit: &FpuUnit, levels: &[VoltageReduction], width: usize) -> Vec<OpErrorStats> {
    levels
        .iter()
        .map(|&vr| OpErrorStats::empty(unit.op(), vr, width))
        .collect()
}

/// Windows of work per distribution chunk. Small enough that a worker
/// stuck on a skewed chunk (dense transitions cost more than sparse
/// ones) cannot serialize the campaign the way the old static
/// contiguous split could — idle workers just pull the next chunk off
/// the cursor — and large enough that the one-vector state
/// re-establishment at each chunk boundary stays negligible (< 0.5 %).
const CHUNK_WINDOWS: usize = 4;

/// Error label for the DTA worker pools.
const DTA_POOL: &str = "DTA campaign";

/// Per-worker scratch reused across every chunk a worker claims: the
/// arrival engine (lane planes, settle arrays, transposed transition
/// masks) and the flat encode buffer are allocated once per worker
/// thread, never per window or per chunk.
struct EngineScratch<'u> {
    engine: Box<dyn ArrivalEngine + 'u>,
    flat: Vec<bool>,
}

/// One chunk's finished statistics, published exactly once by whichever
/// worker claimed the chunk. Aligned to its own cache line so adjacent
/// slots written by different workers never false-share.
#[derive(Default)]
#[repr(align(128))]
struct ChunkSlot(Mutex<Option<Vec<OpErrorStats>>>);

/// Run `n_chunks` chunk jobs across `threads` workers pulling chunk
/// indices off a shared atomic cursor, then merge the per-chunk stats
/// **in chunk-index order** — chunk order is transition order, so the
/// merged result is byte-identical to the serial walk no matter which
/// worker ran which chunk or in what order they finished.
///
/// `run_chunk(ci, scratch)` computes chunk `ci` with the worker's
/// reusable scratch. Each worker builds its scratch once on its own
/// thread via `make_scratch` (first-touch local allocation) and keeps
/// per-chunk accumulation thread-local; only the finished chunk result
/// is published.
fn run_chunked<S>(
    n_chunks: usize,
    threads: usize,
    make_scratch: impl Fn() -> S + Sync,
    empty: impl Fn() -> Vec<OpErrorStats>,
    run_chunk: impl Fn(usize, &mut S) -> Vec<OpErrorStats> + Sync,
) -> Result<Vec<OpErrorStats>, TeiError> {
    let threads = threads.clamp(1, n_chunks.max(1));
    let mut merged = empty();
    if threads <= 1 {
        let mut scratch = make_scratch();
        for ci in 0..n_chunks {
            for (dst, src) in merged.iter_mut().zip(&run_chunk(ci, &mut scratch)) {
                dst.merge(src);
            }
        }
        return Ok(merged);
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<ChunkSlot> = (0..n_chunks).map(|_| ChunkSlot::default()).collect();
    let panicked = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|_| {
                    let mut scratch = make_scratch();
                    loop {
                        let ci = cursor.fetch_add(1, Ordering::Relaxed);
                        if ci >= n_chunks {
                            break;
                        }
                        let stats = run_chunk(ci, &mut scratch);
                        let mut slot = match slots[ci].0.lock() {
                            Ok(g) => g,
                            Err(poisoned) => poisoned.into_inner(),
                        };
                        *slot = Some(stats);
                    }
                })
            })
            .collect();
        // Join *every* handle (an early return would leave panicked
        // threads unjoined and re-panic at scope exit), then report.
        let mut panicked = false;
        for h in handles {
            panicked |= h.join().is_err();
        }
        panicked
    })
    .map_err(|_| TeiError::WorkerPool(DTA_POOL))?;
    if panicked {
        return Err(TeiError::WorkerPool(DTA_POOL));
    }
    for slot in slots {
        let stats = match slot.0.into_inner() {
            Ok(s) => s,
            Err(poisoned) => poisoned.into_inner(),
        }
        .ok_or(TeiError::WorkerPool(DTA_POOL))?;
        for (dst, src) in merged.iter_mut().zip(&stats) {
            dst.merge(src);
        }
    }
    Ok(merged)
}

/// Run a DTA campaign for one unit over an operand-pair stream, producing
/// stats for every requested VR level in one pass (uniform derating lets a
/// single settle computation be re-thresholded per corner).
///
/// The first pair only establishes circuit state; transition `k` is
/// `pairs[k] → pairs[k+1]`, the chained access pattern the compiled
/// [`ArrivalKernel`] advances without re-evaluating unchanged cones.
/// Work is distributed in chunks across `TEI_THREADS` worker threads
/// (default: all cores); the parallel output is byte-identical to the
/// single-threaded one.
///
/// # Errors
///
/// [`TeiError::WorkerPool`] when a campaign worker panics.
pub fn dta_campaign(
    unit: &FpuUnit,
    pairs: &[(u64, u64)],
    clk: f64,
    levels: &[VoltageReduction],
) -> Result<Vec<OpErrorStats>, TeiError> {
    dta_campaign_with_threads(unit, pairs, clk, levels, config::default_threads())
}

/// [`dta_campaign`] with an explicit worker-thread count.
///
/// # Errors
///
/// [`TeiError::WorkerPool`] when a campaign worker panics.
pub fn dta_campaign_with_threads(
    unit: &FpuUnit,
    pairs: &[(u64, u64)],
    clk: f64,
    levels: &[VoltageReduction],
    threads: usize,
) -> Result<Vec<OpErrorStats>, TeiError> {
    dta_campaign_tuned(unit, pairs, clk, levels, threads, DtaTuning::default())
}

/// [`dta_campaign_with_threads`] with explicit [`DtaTuning`]. Tuning
/// never changes the produced statistics — only how much work the inner
/// loop performs, how wide its lane words are, and which engine backend
/// runs it; the default (safe-bit pruning on, `TEI_LANES` lane words,
/// `TEI_KERNEL` backend) is what every other entry point uses.
///
/// # Errors
///
/// [`TeiError::Config`] for a lane width outside
/// [`config::SUPPORTED_LANES`] or an unsatisfiable backend requirement;
/// [`TeiError::WorkerPool`] when a campaign worker panics.
pub fn dta_campaign_tuned(
    unit: &FpuUnit,
    pairs: &[(u64, u64)],
    clk: f64,
    levels: &[VoltageReduction],
    threads: usize,
    tuning: DtaTuning,
) -> Result<Vec<OpErrorStats>, TeiError> {
    // Resolve the tuning into an engine once up front so config errors
    // surface before any worker threads spawn; workers then build their
    // own engine from the validated tuning.
    let lanes = resolve_lanes(
        tuning.lanes,
        tuning.backend,
        tei_kernels::registry().covers(unit),
    );
    drop(dta_engine(unit, lanes, tuning.backend)?);
    let outputs = unit.result_port().to_vec();
    if pairs.len() < 2 {
        return Ok(empty_stats(unit, levels, outputs.len()));
    }
    let compiled = unit.dta_compiled();
    let factors: Vec<f64> = levels.iter().map(|vr| vr.derating_factor()).collect();
    let prune = resolve_prune(unit, clk, levels, tuning.prune);
    let live = live_bits(compiled, &outputs, &factors, clk, prune.enabled);

    // Transition t is pairs[t] → pairs[t+1]. Chunk ci covers the
    // contiguous transitions [ci*span, (ci+1)*span), each chunk
    // re-establishing circuit state from its first pair (a one-pair
    // overlap with the previous chunk), so merging chunk results in
    // index order reproduces the serial walk.
    let transitions = pairs.len() - 1;
    let width = unit.input_width();
    let window_vectors = lanes * 64;
    let span = CHUNK_WINDOWS * (window_vectors - 1);
    let make_scratch = || EngineScratch {
        engine: dta_engine(unit, lanes, tuning.backend).expect("tuning validated above"),
        flat: vec![false; window_vectors * width],
    };
    let run_chunk = |ci: usize, scratch: &mut EngineScratch| -> Vec<OpErrorStats> {
        let lo = ci * span;
        let hi = ((ci + 1) * span).min(transitions);
        let mut stats = empty_stats(unit, levels, outputs.len());
        // Bit-sliced windows over the chunk's vectors, overlapping one
        // vector so every transition lo..hi is covered exactly once.
        let mut start = lo;
        while start < hi {
            let count = (hi - start + 1).min(window_vectors);
            for (v, &(a, b)) in pairs[start..start + count].iter().enumerate() {
                unit.encode_inputs_into(a, b, &mut scratch.flat[v * width..(v + 1) * width]);
            }
            scratch
                .engine
                .load_window(&scratch.flat[..count * width], count);
            for t in 0..count - 1 {
                scratch.engine.select_transition(t);
                accumulate_transition(
                    &mut stats,
                    &factors,
                    &live,
                    &outputs,
                    clk,
                    scratch.engine.as_ref(),
                );
            }
            start += count - 1;
        }
        stats
    };

    let mut stats = run_chunked(
        transitions.div_ceil(span),
        threads,
        make_scratch,
        || empty_stats(unit, levels, outputs.len()),
        run_chunk,
    )?;
    finalize_masks(&mut stats);
    Ok(stats)
}

/// DTA over a *sampled subset* of a trace: each sampled index `i ≥ 1`
/// is analyzed as the transition `trace[i-1] → trace[i]`, preserving the
/// true previous circuit state of every sampled dynamic instruction (the
/// paper's "randomly extracted" characterization). Chunks across
/// `TEI_THREADS` worker threads with output identical to the serial walk.
///
/// # Errors
///
/// [`TeiError::WorkerPool`] when a campaign worker panics.
pub fn dta_campaign_sampled(
    unit: &FpuUnit,
    trace: &[(u64, u64)],
    indices: &[usize],
    clk: f64,
    levels: &[VoltageReduction],
) -> Result<Vec<OpErrorStats>, TeiError> {
    dta_campaign_sampled_with_threads(unit, trace, indices, clk, levels, config::default_threads())
}

/// [`dta_campaign_sampled`] with an explicit worker-thread count.
///
/// # Errors
///
/// [`TeiError::WorkerPool`] when a campaign worker panics.
pub fn dta_campaign_sampled_with_threads(
    unit: &FpuUnit,
    trace: &[(u64, u64)],
    indices: &[usize],
    clk: f64,
    levels: &[VoltageReduction],
    threads: usize,
) -> Result<Vec<OpErrorStats>, TeiError> {
    // Sampled campaigns follow the default tuning (`TEI_LANES`,
    // `TEI_KERNEL`); the result is bit-identical for every setting.
    dta_campaign_sampled_tuned(
        unit,
        trace,
        indices,
        clk,
        levels,
        threads,
        DtaTuning::default(),
    )
}

/// [`dta_campaign_sampled_with_threads`] with explicit [`DtaTuning`].
///
/// # Errors
///
/// [`TeiError::Config`] for a lane width outside
/// [`config::SUPPORTED_LANES`] or an unsatisfiable backend requirement;
/// [`TeiError::WorkerPool`] when a campaign worker panics.
pub fn dta_campaign_sampled_tuned(
    unit: &FpuUnit,
    trace: &[(u64, u64)],
    indices: &[usize],
    clk: f64,
    levels: &[VoltageReduction],
    threads: usize,
    tuning: DtaTuning,
) -> Result<Vec<OpErrorStats>, TeiError> {
    // Validate up front (and fail instead of silently coercing an
    // unsupported lane width); workers build from the validated tuning.
    let lanes = resolve_lanes(
        tuning.lanes,
        tuning.backend,
        tei_kernels::registry().covers(unit),
    );
    drop(dta_engine(unit, lanes, tuning.backend)?);
    let outputs = unit.result_port().to_vec();
    let compiled = unit.dta_compiled();
    let factors: Vec<f64> = levels.iter().map(|vr| vr.derating_factor()).collect();
    let prune = resolve_prune(unit, clk, levels, tuning.prune);
    let live = live_bits(compiled, &outputs, &factors, clk, prune.enabled);

    // Sampled transitions are disjoint, so each window packs
    // `prev, cur` vector pairs and analyzes the even transitions only
    // (odd lanes straddle unrelated samples). Chunk ci covers a
    // contiguous run of sample indices; index order is preserved.
    let width = unit.input_width();
    let window_vectors = lanes * 64;
    let samples_per_window = window_vectors / 2;
    let span = CHUNK_WINDOWS * samples_per_window;
    let make_scratch = || EngineScratch {
        engine: dta_engine(unit, lanes, tuning.backend).expect("tuning validated above"),
        flat: vec![false; window_vectors * width],
    };
    let run_chunk = |ci: usize, scratch: &mut EngineScratch| -> Vec<OpErrorStats> {
        let slice = &indices[ci * span..((ci + 1) * span).min(indices.len())];
        let mut stats = empty_stats(unit, levels, outputs.len());
        for chunk in slice.chunks(samples_per_window) {
            let count = chunk.len() * 2;
            for (j, &i) in chunk.iter().enumerate() {
                assert!(i >= 1 && i < trace.len(), "sample index out of range");
                let lo = (2 * j) * width;
                unit.encode_inputs_into(
                    trace[i - 1].0,
                    trace[i - 1].1,
                    &mut scratch.flat[lo..lo + width],
                );
                unit.encode_inputs_into(
                    trace[i].0,
                    trace[i].1,
                    &mut scratch.flat[lo + width..lo + 2 * width],
                );
            }
            scratch
                .engine
                .load_window(&scratch.flat[..count * width], count);
            for j in 0..chunk.len() {
                scratch.engine.select_transition(2 * j);
                accumulate_transition(
                    &mut stats,
                    &factors,
                    &live,
                    &outputs,
                    clk,
                    scratch.engine.as_ref(),
                );
            }
        }
        stats
    };

    let mut stats = run_chunked(
        indices.len().div_ceil(span),
        threads,
        make_scratch,
        || empty_stats(unit, levels, outputs.len()),
        run_chunk,
    )?;
    finalize_masks(&mut stats);
    Ok(stats)
}

/// Average absolute BER estimation error (paper eq. 3) between a
/// full-trace reference and a sampled estimate, over bits where the
/// reference is non-zero.
pub fn average_absolute_error(full: &[f64], sim: &[f64]) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for (&f, &s) in full.iter().zip(sim) {
        if f > 0.0 {
            sum += ((f - s) / f).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// The fixed error ratios of the data-agnostic model, measured by DTA over
/// a pooled benchmark-mix instruction stream (paper Section IV.C.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DaCalibration {
    /// `(VR level, fixed ER)` pairs.
    pub er: Vec<(VoltageReduction, f64)>,
}

/// Map `f` over all twelve operation types, distributing ops to up to
/// `TEI_THREADS` scoped worker threads through a shared work queue.
/// Results come back in op order regardless of completion order, so
/// callers folding them stay deterministic. Workers run their campaigns
/// serially (pass `threads = 1` down) to avoid oversubscription.
///
/// A worker that panics (or a slot left unfilled) surfaces as
/// [`TeiError::WorkerPool`] instead of tearing the process down, so model
/// development failures are reportable by the campaign orchestrator.
pub(crate) fn per_op_parallel<T, F>(f: F) -> Result<Vec<T>, TeiError>
where
    T: Send,
    F: Fn(FpOp) -> T + Sync,
{
    const POOL: &str = "per-op model development";
    let ops = FpOp::all();
    let threads = config::default_threads().clamp(1, ops.len());
    if threads <= 1 {
        return Ok(ops.into_iter().map(f).collect());
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..ops.len()).map(|_| Mutex::new(None)).collect();
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= ops.len() {
                    break;
                }
                let value = f(ops[i]);
                let mut slot = match slots[i].lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                *slot = Some(value);
            });
        }
    })
    .map_err(|_| TeiError::WorkerPool(POOL))?;
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .ok_or(TeiError::WorkerPool(POOL))
        })
        .collect()
}

/// Calibrate the DA model's fixed ER from pooled traces: the average
/// instruction error ratio over the mixed stream. Per-op campaigns run
/// on parallel worker threads; totals fold in op order.
///
/// # Errors
///
/// [`TeiError::WorkerPool`] when the per-op worker pool fails.
pub fn calibrate_da(
    bank: &FpuBank,
    spec: &FpuTimingSpec,
    pooled: &TraceSet,
    levels: &[VoltageReduction],
    per_op_cap: usize,
) -> Result<DaCalibration, TeiError> {
    let per_op: Vec<Result<Option<Vec<OpErrorStats>>, TeiError>> = per_op_parallel(|op| {
        let trace = pooled.of(op);
        if trace.len() < 2 {
            return Ok(None);
        }
        let take = trace.len().min(per_op_cap);
        dta_campaign_with_threads(bank.unit(op), &trace[..take], spec.clk, levels, 1).map(Some)
    })?;
    let mut totals = vec![(0u64, 0u64); levels.len()]; // (faulty, samples)
    for stats in per_op {
        for (t, s) in totals.iter_mut().zip(&stats?.unwrap_or_default()) {
            t.0 += s.faulty;
            t.1 += s.samples;
        }
    }
    Ok(DaCalibration {
        er: levels
            .iter()
            .zip(&totals)
            .map(|(&vr, &(f, n))| (vr, if n == 0 { 0.0 } else { f as f64 / n as f64 }))
            .collect(),
    })
}

/// Run the structural netlist lints over every unit of a bank, so a
/// campaign can refuse to characterize a broken design up front.
///
/// # Errors
///
/// [`TeiError::NetlistLint`] naming the first unit with findings.
pub fn lint_bank(bank: &FpuBank) -> Result<(), TeiError> {
    for unit in bank.iter() {
        let diagnostics = tei_netlist::lint_netlist(unit.netlist());
        if !diagnostics.is_empty() {
            return Err(TeiError::NetlistLint {
                design: unit.tag().to_string(),
                diagnostics,
            });
        }
    }
    Ok(())
}

/// Generate (or regenerate) the calibrated FPU bank used across the
/// toolflow, honoring `TEI_DTA_SAMPLES` for campaign sizing decisions.
pub fn default_bank() -> (FpuBank, FpuTimingSpec) {
    let spec = FpuTimingSpec::paper_calibrated();
    (FpuBank::generate(&spec), spec)
}

/// The default DTA sample budget (see [`config::default_dta_samples`]).
pub fn dta_samples() -> usize {
    config::default_dta_samples()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tei_softfloat::Precision;

    fn stats_with_masks(masks: Vec<u64>) -> OpErrorStats {
        let op = FpOp::new(FpOpKind::Add, Precision::Single);
        let mut s = OpErrorStats::empty(op, VoltageReduction::VR20, 32);
        s.masks = masks;
        s
    }

    #[test]
    fn reservoir_cap_is_deterministic_and_unbiased_to_prefix() {
        let full: Vec<u64> = (1..=1000).collect();
        let mut a = [stats_with_masks(full.clone())];
        let mut b = [stats_with_masks(full.clone())];
        finalize_masks_with_cap(&mut a, 64);
        finalize_masks_with_cap(&mut b, 64);
        assert_eq!(a[0].masks, b[0].masks, "same seed, same subsample");
        assert_eq!(a[0].masks.len(), 64);
        assert!(a[0].masks.iter().all(|m| full.contains(m)));
        assert_ne!(
            a[0].masks,
            full[..64].to_vec(),
            "reservoir must not degenerate to first-N truncation"
        );
    }

    #[test]
    fn reservoir_leaves_small_libraries_untouched() {
        let mut s = [stats_with_masks(vec![3, 1, 2])];
        finalize_masks_with_cap(&mut s, 10);
        assert_eq!(s[0].masks, vec![3, 1, 2], "under-cap library keeps order");
    }

    #[test]
    fn merge_concatenates_masks_and_sums_counts() {
        let op = FpOp::new(FpOpKind::Add, Precision::Single);
        let mut a = OpErrorStats::empty(op, VoltageReduction::VR20, 2);
        let mut b = OpErrorStats::empty(op, VoltageReduction::VR20, 2);
        a.samples = 5;
        a.faulty = 2;
        a.bit_errors = vec![2, 0];
        a.masks = vec![0b01, 0b01];
        a.flip_hist.insert(1, 2);
        b.samples = 3;
        b.faulty = 1;
        b.bit_errors = vec![0, 1];
        b.masks = vec![0b10];
        b.flip_hist.insert(1, 1);
        a.merge(&b);
        assert_eq!(a.samples, 8);
        assert_eq!(a.faulty, 3);
        assert_eq!(a.bit_errors, vec![2, 1]);
        assert_eq!(a.masks, vec![0b01, 0b01, 0b10], "shard-order concatenation");
        assert_eq!(a.flip_hist.get(&1), Some(&3));
    }

    #[test]
    fn chunked_merge_preserves_chunk_order() {
        let op = FpOp::new(FpOpKind::Add, Precision::Single);
        let empty = || vec![OpErrorStats::empty(op, VoltageReduction::VR20, 8)];
        let run = |ci: usize, _s: &mut ()| {
            let mut v = empty();
            v[0].samples = 1;
            v[0].masks = vec![ci as u64];
            v
        };
        for threads in [1usize, 2, 5, 32] {
            let merged = run_chunked(17, threads, || (), empty, run).expect("pool");
            assert_eq!(merged[0].samples, 17);
            let want: Vec<u64> = (0..17).collect();
            assert_eq!(
                merged[0].masks, want,
                "masks must concatenate in chunk-index order at {threads} threads"
            );
        }
    }

    #[test]
    fn worker_panic_surfaces_as_pool_error() {
        let op = FpOp::new(FpOpKind::Add, Precision::Single);
        let empty = || vec![OpErrorStats::empty(op, VoltageReduction::VR20, 8)];
        let run = |ci: usize, _s: &mut ()| -> Vec<OpErrorStats> {
            assert!(ci != 3, "injected worker fault");
            empty()
        };
        let err = run_chunked(8, 2, || (), empty, run).expect_err("must not succeed");
        assert!(
            matches!(err, TeiError::WorkerPool(_)),
            "worker panic must surface as a typed pool error, got {err}"
        );
    }

    #[test]
    fn bad_lane_width_is_a_config_error() {
        let (bank, spec) = default_bank();
        let op = FpOp::new(FpOpKind::Add, Precision::Single);
        let pairs = random_operand_pairs(op, 8, 7);
        let tuning = DtaTuning {
            lanes: Some(3),
            ..DtaTuning::default()
        };
        let err = dta_campaign_tuned(
            bank.unit(op),
            &pairs,
            spec.clk,
            &[VoltageReduction::VR20],
            1,
            tuning,
        )
        .expect_err("lane width 3 must be rejected");
        assert!(
            matches!(err, TeiError::Config { .. }),
            "unsupported lanes must be a config error, got {err}"
        );
    }

    #[test]
    fn lane_auto_pick_follows_measured_per_backend_order() {
        // Explicit requests always win, whatever the backend.
        for backend in [
            KernelBackend::Interpreter,
            KernelBackend::Generated,
            KernelBackend::Auto,
        ] {
            for fresh in [false, true] {
                for lanes in [1usize, 4, 8] {
                    assert_eq!(resolve_lanes(Some(lanes), backend, fresh), lanes);
                }
            }
        }
        // Auto picks the head of the measured order for the engine that
        // will actually run: the interpreter's best is W4 (W8 was the
        // measured regression), the generated kernel's best is W8.
        assert_eq!(
            resolve_lanes(None, KernelBackend::Interpreter, true),
            INTERP_LANE_ORDER[0]
        );
        assert_eq!(
            resolve_lanes(None, KernelBackend::Auto, false),
            INTERP_LANE_ORDER[0],
            "auto without a fresh kernel runs the interpreter"
        );
        assert_eq!(
            resolve_lanes(None, KernelBackend::Auto, true),
            CODEGEN_LANE_ORDER[0]
        );
        assert_eq!(
            resolve_lanes(None, KernelBackend::Generated, false),
            CODEGEN_LANE_ORDER[0]
        );
        // The dispatch tables themselves must stay permutations of the
        // supported widths — a typo here would silently break auto.
        for order in [INTERP_LANE_ORDER, CODEGEN_LANE_ORDER] {
            let mut sorted = order;
            sorted.sort_unstable();
            assert_eq!(sorted, config::SUPPORTED_LANES);
        }
        // The shipped bank has fresh kernels, so the default tuning on
        // a fresh registry resolves to the codegen-best width.
        let (bank, _) = default_bank();
        let unit = bank.unit(FpOp::new(FpOpKind::Add, Precision::Single));
        assert!(tei_kernels::registry().covers(unit));
        assert_eq!(
            resolve_lanes(
                None,
                KernelBackend::Auto,
                tei_kernels::registry().covers(unit)
            ),
            CODEGEN_LANE_ORDER[0]
        );
    }

    #[test]
    fn prune_policy_resolves_against_the_oracle() {
        let (bank, spec) = default_bank();
        let unit = bank.unit(FpOp::new(FpOpKind::Add, Precision::Single));
        let levels = [VoltageReduction::VR15, VoltageReduction::VR20];
        let auto = resolve_prune(unit, spec.clk, &levels, PrunePolicy::Auto);
        let on = resolve_prune(unit, spec.clk, &levels, PrunePolicy::ForceOn);
        let off = resolve_prune(unit, spec.clk, &levels, PrunePolicy::ForceOff);
        assert!(on.enabled && !off.enabled);
        assert_eq!(auto.safe_fraction, on.safe_fraction);
        assert_eq!(
            auto.enabled,
            auto.safe_fraction >= PRUNE_MIN_SAFE_FRACTION,
            "auto must be exactly the threshold comparison, measured fraction {}",
            auto.safe_fraction
        );
        // The decision is a pure perf knob: forcing pruning on and off
        // must produce byte-identical statistics either way.
        let pairs = random_operand_pairs(FpOp::new(FpOpKind::Add, Precision::Single), 120, 23);
        let stats: Vec<String> = [PrunePolicy::ForceOn, PrunePolicy::ForceOff]
            .into_iter()
            .map(|prune| {
                let tuning = DtaTuning {
                    prune,
                    ..DtaTuning::default()
                };
                let s = dta_campaign_tuned(unit, &pairs, spec.clk, &levels, 1, tuning)
                    .expect("campaign succeeds");
                serde_json::to_string(&s).expect("stats serialize")
            })
            .collect();
        assert_eq!(stats[0], stats[1], "pruning must never change statistics");
    }

    #[test]
    fn every_backend_produces_identical_stats() {
        let (bank, spec) = default_bank();
        let op = FpOp::new(FpOpKind::Add, Precision::Single);
        let unit = bank.unit(op);
        let pairs = random_operand_pairs(op, 300, 11);
        let levels = [VoltageReduction::VR15, VoltageReduction::VR20];
        let runs: Vec<String> = [
            KernelBackend::Interpreter,
            KernelBackend::Generated,
            KernelBackend::Auto,
        ]
        .into_iter()
        .map(|backend| {
            let tuning = DtaTuning {
                backend,
                ..DtaTuning::default()
            };
            let stats = dta_campaign_tuned(unit, &pairs, spec.clk, &levels, 2, tuning)
                .expect("campaign succeeds");
            serde_json::to_string(&stats).expect("stats serialize")
        })
        .collect();
        assert_eq!(runs[0], runs[1], "interpreter vs generated kernel");
        assert_eq!(runs[0], runs[2], "interpreter vs auto dispatch");
    }
}
