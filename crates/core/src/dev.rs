//! Model development phase: dynamic timing analysis campaigns over the
//! gate-level FPU units, producing the per-bit error statistics and bitmask
//! libraries the injection models are built from (paper Section III.A).

use crate::config;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tei_fpu::{FpuBank, FpuTimingSpec, FpuUnit};
use tei_isa::Program;
use tei_softfloat::{FpOp, FpOpKind};
use tei_timing::{ArrivalSim, TwoVectorResult, VoltageReduction};
use tei_uarch::FuncCore;

/// Per-operation operand trace: consecutive `(a, b)` raw-bit pairs in
/// execution order, as seen by that operation's functional unit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceSet {
    per_op: Vec<Vec<(u64, u64)>>,
}

impl Default for TraceSet {
    fn default() -> Self {
        TraceSet {
            per_op: vec![Vec::new(); 12],
        }
    }
}

impl TraceSet {
    /// Extract the FP operand trace of a program by instrumented functional
    /// execution, keeping at most `cap` pairs per operation type.
    pub fn capture(program: &Program, mem_bytes: usize, max_steps: u64, cap: usize) -> Self {
        let mut per_op: Vec<Vec<(u64, u64)>> = vec![Vec::new(); 12];
        let mut core = FuncCore::with_memory(program, mem_bytes);
        // Reservoir-free capture: keep the first `cap` pairs (the paper
        // randomly extracts 1 M; execution order preserves the consecutive
        // same-unit previous-state semantics DTA needs).
        core.run_with_hook(max_steps, &mut |ev| {
            let slot = &mut per_op[ev.op.index()];
            if slot.len() < cap {
                slot.push((ev.a, ev.b));
            }
            ev.result
        });
        TraceSet { per_op }
    }

    /// The trace of one operation type.
    pub fn of(&self, op: FpOp) -> &[(u64, u64)] {
        &self.per_op[op.index()]
    }

    /// Total captured pairs.
    pub fn len(&self) -> usize {
        self.per_op.iter().map(Vec::len).sum()
    }

    /// True if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merge another trace set into this one (same caps not enforced).
    pub fn merge(&mut self, other: &TraceSet) {
        assert_eq!(self.per_op.len(), other.per_op.len(), "trace arity");
        for (dst, src) in self.per_op.iter_mut().zip(&other.per_op) {
            dst.extend_from_slice(src);
        }
    }
}

/// Uniform random operand pairs for one operation type (the IA model's
/// characterization kernels with randomized inputs).
pub fn random_operand_pairs(op: FpOp, count: usize, seed: u64) -> Vec<(u64, u64)> {
    let mut rng = StdRng::seed_from_u64(seed ^ (op.index() as u64) << 32);
    let fmt = op.format();
    let mask = if fmt.width() == 64 {
        u64::MAX
    } else {
        (1u64 << fmt.width()) - 1
    };
    let gen = |rng: &mut StdRng| -> u64 {
        match op.kind {
            FpOpKind::ItoF => {
                let bits = rng.gen_range(1..=op.precision.int_bits() as u64);
                let raw = rng.gen::<u64>() >> (64 - bits);
                if rng.gen() {
                    (raw as i64).wrapping_neg() as u64
                        & if op.precision.int_bits() == 32 {
                            0xffff_ffff
                        } else {
                            u64::MAX
                        }
                } else {
                    raw
                }
            }
            _ => rng.gen::<u64>() & mask,
        }
    };
    (0..count)
        .map(|_| {
            let a = gen(&mut rng);
            let b = if op.is_binary() { gen(&mut rng) } else { 0 };
            (a, b)
        })
        .collect()
}

/// DTA-derived error statistics of one operation type at one VR level.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpErrorStats {
    /// The characterized operation.
    pub op: FpOp,
    /// Voltage-reduction level.
    pub vr: VoltageReduction,
    /// Operand pairs analyzed.
    pub samples: u64,
    /// Pairs whose output had at least one corrupted bit.
    pub faulty: u64,
    /// Per-output-bit error counts (LSB first) — the BER numerators.
    pub bit_errors: Vec<u64>,
    /// Library of observed error bitmasks (with multiplicity, capped).
    pub masks: Vec<u64>,
    /// Histogram of flipped-bit counts among faulty outputs (Figure 5).
    pub flip_hist: BTreeMap<usize, u64>,
}

impl OpErrorStats {
    /// Instruction-level error ratio (paper eq. 2 restricted to this type).
    pub fn error_ratio(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.faulty as f64 / self.samples as f64
        }
    }

    /// Per-bit error ratios (BER), LSB first.
    pub fn ber(&self) -> Vec<f64> {
        self.bit_errors
            .iter()
            .map(|&c| {
                if self.samples == 0 {
                    0.0
                } else {
                    c as f64 / self.samples as f64
                }
            })
            .collect()
    }
}

/// Maximum retained masks per (op, VR) — enough for faithful empirical
/// sampling without unbounded memory.
const MASK_CAP: usize = 50_000;

/// Run a DTA campaign for one unit over an operand-pair stream, producing
/// stats for every requested VR level in one pass (uniform derating lets a
/// single settle computation be re-thresholded per corner).
///
/// The first pair only establishes circuit state. At the nominal corner the
/// fabricated design meets timing by construction, so settle times beyond
/// the clock (γ-calibration tail noise) are clamped to the clock period:
/// they fail under any voltage reduction but never at nominal.
pub fn dta_campaign(
    unit: &FpuUnit,
    pairs: &[(u64, u64)],
    clk: f64,
    levels: &[VoltageReduction],
) -> Vec<OpErrorStats> {
    let dta = unit.dta_netlist();
    let outputs = unit.result_port().to_vec();
    let width = outputs.len();
    let mut stats: Vec<OpErrorStats> = levels
        .iter()
        .map(|&vr| OpErrorStats {
            op: unit.op(),
            vr,
            samples: 0,
            faulty: 0,
            bit_errors: vec![0; width],
            masks: Vec::new(),
            flip_hist: BTreeMap::new(),
        })
        .collect();
    if pairs.len() < 2 {
        return stats;
    }
    let factors: Vec<f64> = levels.iter().map(|vr| vr.derating_factor()).collect();
    let mut buf = TwoVectorResult::default();
    let mut prev = unit.encode_inputs(pairs[0].0, pairs[0].1);
    for &(a, b) in &pairs[1..] {
        let cur = unit.encode_inputs(a, b);
        ArrivalSim::run_into(&dta, &prev, &cur, &mut buf);
        for (s, &k) in stats.iter_mut().zip(&factors) {
            s.samples += 1;
            let mut mask = 0u64;
            for (bit, &net) in outputs.iter().enumerate() {
                let settle = buf.settle[net.index()].min(clk); // nominal clamp
                if settle * k > clk {
                    mask |= 1 << bit;
                    s.bit_errors[bit] += 1;
                }
            }
            if mask != 0 {
                s.faulty += 1;
                *s.flip_hist.entry(mask.count_ones() as usize).or_default() += 1;
                if s.masks.len() < MASK_CAP {
                    s.masks.push(mask);
                }
            }
        }
        prev = cur;
    }
    stats
}

/// DTA over a *sampled subset* of a trace: each sampled index `i ≥ 1`
/// is analyzed as the transition `trace[i-1] → trace[i]`, preserving the
/// true previous circuit state of every sampled dynamic instruction (the
/// paper's "randomly extracted" characterization).
pub fn dta_campaign_sampled(
    unit: &FpuUnit,
    trace: &[(u64, u64)],
    indices: &[usize],
    clk: f64,
    levels: &[VoltageReduction],
) -> Vec<OpErrorStats> {
    let dta = unit.dta_netlist();
    let outputs = unit.result_port().to_vec();
    let width = outputs.len();
    let mut stats: Vec<OpErrorStats> = levels
        .iter()
        .map(|&vr| OpErrorStats {
            op: unit.op(),
            vr,
            samples: 0,
            faulty: 0,
            bit_errors: vec![0; width],
            masks: Vec::new(),
            flip_hist: BTreeMap::new(),
        })
        .collect();
    let factors: Vec<f64> = levels.iter().map(|vr| vr.derating_factor()).collect();
    let mut buf = TwoVectorResult::default();
    for &i in indices {
        assert!(i >= 1 && i < trace.len(), "sample index out of range");
        let prev = unit.encode_inputs(trace[i - 1].0, trace[i - 1].1);
        let cur = unit.encode_inputs(trace[i].0, trace[i].1);
        ArrivalSim::run_into(&dta, &prev, &cur, &mut buf);
        for (s, &k) in stats.iter_mut().zip(&factors) {
            s.samples += 1;
            let mut mask = 0u64;
            for (bit, &net) in outputs.iter().enumerate() {
                let settle = buf.settle[net.index()].min(clk);
                if settle * k > clk {
                    mask |= 1 << bit;
                    s.bit_errors[bit] += 1;
                }
            }
            if mask != 0 {
                s.faulty += 1;
                *s.flip_hist.entry(mask.count_ones() as usize).or_default() += 1;
                if s.masks.len() < MASK_CAP {
                    s.masks.push(mask);
                }
            }
        }
    }
    stats
}

/// Average absolute BER estimation error (paper eq. 3) between a
/// full-trace reference and a sampled estimate, over bits where the
/// reference is non-zero.
pub fn average_absolute_error(full: &[f64], sim: &[f64]) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for (&f, &s) in full.iter().zip(sim) {
        if f > 0.0 {
            sum += ((f - s) / f).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// The fixed error ratios of the data-agnostic model, measured by DTA over
/// a pooled benchmark-mix instruction stream (paper Section IV.C.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DaCalibration {
    /// `(VR level, fixed ER)` pairs.
    pub er: Vec<(VoltageReduction, f64)>,
}

/// Calibrate the DA model's fixed ER from pooled traces: the average
/// instruction error ratio over the mixed stream.
pub fn calibrate_da(
    bank: &FpuBank,
    spec: &FpuTimingSpec,
    pooled: &TraceSet,
    levels: &[VoltageReduction],
    per_op_cap: usize,
) -> DaCalibration {
    let mut totals = vec![(0u64, 0u64); levels.len()]; // (faulty, samples)
    for op in FpOp::all() {
        let trace = pooled.of(op);
        if trace.len() < 2 {
            continue;
        }
        let take = trace.len().min(per_op_cap);
        let stats = dta_campaign(bank.unit(op), &trace[..take], spec.clk, levels);
        for (t, s) in totals.iter_mut().zip(&stats) {
            t.0 += s.faulty;
            t.1 += s.samples;
        }
    }
    DaCalibration {
        er: levels
            .iter()
            .zip(&totals)
            .map(|(&vr, &(f, n))| (vr, if n == 0 { 0.0 } else { f as f64 / n as f64 }))
            .collect(),
    }
}

/// Generate (or regenerate) the calibrated FPU bank used across the
/// toolflow, honoring `TEI_DTA_SAMPLES` for campaign sizing decisions.
pub fn default_bank() -> (FpuBank, FpuTimingSpec) {
    let spec = FpuTimingSpec::paper_calibrated();
    (FpuBank::generate(&spec), spec)
}

/// The default DTA sample budget (see [`config::default_dta_samples`]).
pub fn dta_samples() -> usize {
    config::default_dta_samples()
}
