//! Application evaluation phase: microarchitecture-aware injection
//! campaigns (paper Section III.B and V).
//!
//! Each campaign cell runs the target benchmark once on the detailed
//! out-of-order core (golden run, recording the cycle-stamped FP writeback
//! timeline including wrong-path events) and once functionally (golden
//! output). Every injection run then draws one FP writeback event from the
//! timeline weighted by the model's per-instruction error probability;
//! events on the wrong path classify as microarchitecturally masked, and
//! architectural events are corrupted in a fast functional replay whose
//! outcome is classified as Masked / SDC / Crash / Timeout against the
//! golden output (Section IV.A), with the paper's 2× timeout criterion.
//!
//! ## Fault tolerance and durability
//!
//! A paper-scale sweep is 1068 runs per cell across dozens of cells; the
//! runner is built to survive the chaos fault injection creates (the ZOFI
//! principle). Each injection run executes behind a panic isolation
//! boundary: a run that panics is retried once with the same draw, and a
//! second panic **quarantines** the run (recording its `(seed, target,
//! mask)` repro triple) instead of tearing down the worker pool.
//! [`run_campaign_durable`] additionally write-ahead-logs every completed
//! run to a [`Journal`](crate::journal::Journal), drains workers on
//! SIGINT/SIGTERM, and resumes interrupted sweeps with final
//! [`OutcomeCounts`] byte-identical to an uninterrupted campaign.

// Orchestration must degrade to typed errors, never panic mid-sweep
// (clippy.toml bans the panicking extractors here).
#![deny(clippy::disallowed_methods)]

use crate::error::TeiError;
use crate::journal::{fnv64, CampaignManifest, Journal, JournalResume, RecordedOutcome, RunRecord};
use crate::models::InjectionModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use tei_softfloat::FpOp;
use tei_timing::VoltageReduction;
use tei_uarch::{
    CheckpointPool, CheckpointRecorder, ExitReason, FuncCore, InjectedExit, OooConfig, OooCore,
};
use tei_workloads::Benchmark;

/// Injection-run outcome categories (paper Section IV.A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Outcome {
    /// Execution and output identical to the error-free run.
    Masked,
    /// Completed with different output, no observable indication.
    Sdc,
    /// Process/system crash or floating-point exception.
    Crash,
    /// Did not finish within 2× the error-free execution time.
    Timeout,
}

impl Outcome {
    /// All four categories, paper order.
    pub fn all() -> [Outcome; 4] {
        [
            Outcome::Masked,
            Outcome::Sdc,
            Outcome::Crash,
            Outcome::Timeout,
        ]
    }

    /// Paper label.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Masked => "Masked",
            Outcome::Sdc => "SDC",
            Outcome::Crash => "Crash",
            Outcome::Timeout => "Timeout",
        }
    }
}

/// Golden-run record shared by all injection runs of a benchmark.
#[derive(Debug, Clone)]
pub struct GoldenRun {
    program: tei_isa::Program,
    mem_bytes: usize,
    /// Error-free output bytes.
    pub output: Vec<u8>,
    /// Error-free retired instruction count.
    pub instructions: u64,
    /// Error-free dynamic FP operation count.
    pub fp_ops: u64,
    /// Error-free detailed-core cycle count.
    pub cycles: u64,
    /// Committed arch FP indices per operation type.
    pub arch_by_op: Vec<Vec<u64>>,
    /// Wrong-path (squashed) FP writebacks per operation type.
    pub squashed_by_op: Vec<u64>,
    /// Detailed-core statistics of the golden run.
    pub ooo_stats: tei_uarch::OooStats,
    /// Golden-run checkpoints for the fork-replay engine, shared by all
    /// campaign workers (cheap `Arc` clone).
    pub checkpoints: CheckpointPool,
}

impl GoldenRun {
    /// Execute the golden detailed + functional runs with the default
    /// checkpoint interval (`TEI_CHECKPOINT_INTERVAL`, auto when unset).
    ///
    /// # Errors
    ///
    /// [`TeiError::GoldenRun`] if the error-free benchmark does not
    /// complete successfully or the two cores disagree.
    pub fn capture(bench: &Benchmark, mem_bytes: usize, max_cycles: u64) -> Result<Self, TeiError> {
        Self::capture_with_checkpoints(
            bench,
            mem_bytes,
            max_cycles,
            crate::config::default_checkpoint_interval(),
        )
    }

    /// [`GoldenRun::capture`] with an explicit checkpoint spacing in
    /// dynamic FP operations (0 selects the auto policy). The spacing only
    /// affects replay speed, never campaign outcomes.
    ///
    /// # Errors
    ///
    /// See [`GoldenRun::capture`].
    pub fn capture_with_checkpoints(
        bench: &Benchmark,
        mem_bytes: usize,
        max_cycles: u64,
        checkpoint_interval: u64,
    ) -> Result<Self, TeiError> {
        let fail = |detail: String| TeiError::GoldenRun {
            benchmark: bench.id.to_string(),
            detail,
        };
        let mut ooo = OooCore::with_memory(&bench.program, OooConfig::default(), mem_bytes);
        let od = ooo.run(max_cycles);
        if !od.exit.is_success() {
            return Err(fail(format!("detailed run exited with {:?}", od.exit)));
        }
        let mut func = FuncCore::with_memory(&bench.program, mem_bytes);
        let mut recorder = CheckpointRecorder::try_new(&func, checkpoint_interval)
            .map_err(|e| fail(e.to_string()))?;
        let mut op_of: Vec<FpOp> = Vec::new();
        // Manual run loop so checkpoints are captured at instruction
        // boundaries whenever the FP-op counter crosses the next mark.
        let exit = loop {
            recorder.observe(&func);
            match func.step(&mut |ev| {
                op_of.push(ev.op);
                ev.result
            }) {
                Ok(None) => {}
                Ok(Some(exit)) => break exit,
                Err(trap) => break ExitReason::Trapped(trap),
            }
        };
        if !matches!(exit, ExitReason::Halted | ExitReason::Exited(0)) {
            return Err(fail(format!("functional run exited with {exit:?}")));
        }
        if func.output != ooo.output {
            return Err(fail("core disagreement in golden run".to_string()));
        }
        let mut arch_by_op: Vec<Vec<u64>> = vec![Vec::new(); 12];
        for (i, op) in op_of.iter().enumerate() {
            arch_by_op[op.index()].push(i as u64);
        }
        let mut squashed_by_op = vec![0u64; 12];
        for ev in &ooo.fp_timeline {
            if ev.arch_index.is_none() {
                squashed_by_op[ev.op.index()] += 1;
            }
        }
        Ok(GoldenRun {
            program: bench.program.clone(),
            mem_bytes,
            instructions: func.instructions(),
            fp_ops: func.fp_ops(),
            output: func.output,
            cycles: ooo.stats.cycles,
            arch_by_op,
            squashed_by_op,
            ooo_stats: ooo.stats.clone(),
            checkpoints: recorder.finish(),
        })
    }
}

/// How each injection run replays the corrupted execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplayMode {
    /// Fresh core per run, full re-execution from instruction zero (the
    /// original engine; kept as the reference baseline).
    FromZero,
    /// Fork from the nearest golden checkpoint, fast-forward hook-free to
    /// the target, and cut the run short on state re-convergence.
    /// `memoize` additionally dedupes repeated `(target, mask)` draws
    /// behind a per-cell concurrent map (outcomes are deterministic given
    /// the pair, so only unique pairs are replayed).
    Checkpointed {
        /// Enable the `(target, mask)` outcome cache.
        memoize: bool,
    },
}

impl Default for ReplayMode {
    fn default() -> Self {
        ReplayMode::Checkpointed { memoize: true }
    }
}

/// Test-only chaos hooks, used to exercise the fault-tolerance machinery
/// deterministically. All fields default to "off"; they are excluded from
/// serialization and from the campaign manifest, so chaos settings never
/// change a journal's identity.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Chaos {
    /// Run indices whose *first* attempt panics (the retry succeeds).
    pub panic_once: Vec<usize>,
    /// Run indices that panic on every attempt (always quarantined).
    pub panic_always: Vec<usize>,
    /// Per-run sleep in milliseconds — slows a sweep down so external
    /// kill-and-resume tests reliably interrupt it mid-flight.
    pub throttle_ms: u64,
    /// Stop scheduling new runs once this many journal appends happened
    /// (simulates an interrupt at a deterministic point).
    pub stop_after_appends: Option<u64>,
}

impl Chaos {
    fn should_panic(&self, run: usize, attempt: u32) -> bool {
        self.panic_always.contains(&run) || (attempt == 0 && self.panic_once.contains(&run))
    }
}

/// Campaign sizing and determinism knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Injection runs (paper: 1068 for 3 % margin / 95 % confidence).
    pub runs: usize,
    /// Base RNG seed (each run derives its own).
    pub seed: u64,
    /// Timeout threshold as a multiple of the error-free instruction count.
    pub timeout_factor: f64,
    /// Worker threads.
    pub threads: usize,
    /// Replay engine. Outcome tallies are byte-identical across modes and
    /// thread counts; only wall-clock differs.
    pub mode: ReplayMode,
    /// Test-only fault/chaos hooks. Excluded from the campaign manifest,
    /// so chaos settings never change a journal's identity.
    pub chaos: Chaos,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            runs: crate::config::default_runs(),
            seed: 0x7e1_c0de,
            timeout_factor: 2.0,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            mode: ReplayMode::default(),
            chaos: Chaos::default(),
        }
    }
}

impl CampaignConfig {
    /// Sanity-check the sizing knobs before a long sweep.
    ///
    /// # Errors
    ///
    /// [`TeiError::Config`] naming the offending field.
    pub fn validate(&self) -> Result<(), TeiError> {
        let bad = |knob: &str, reason: String| TeiError::Config {
            knob: knob.to_string(),
            reason,
        };
        if self.runs == 0 {
            return Err(bad("runs", "must be at least 1".into()));
        }
        if self.threads == 0 {
            return Err(bad("threads", "must be at least 1".into()));
        }
        if !(self.timeout_factor.is_finite() && self.timeout_factor > 0.0) {
            return Err(bad(
                "timeout_factor",
                format!("{} is not a positive finite factor", self.timeout_factor),
            ));
        }
        Ok(())
    }
}

/// Outcome tally of one campaign cell.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeCounts {
    /// Masked runs (total, including the microarchitectural subset).
    pub masked: u64,
    /// Silent data corruptions.
    pub sdc: u64,
    /// Crashes.
    pub crash: u64,
    /// Timeouts.
    pub timeout: u64,
    /// Subset of `masked`: injection landed on a squashed (wrong-path)
    /// instruction.
    pub masked_wrong_path: u64,
    /// Subset of `masked`: the model assigned zero error probability to
    /// every executed instruction, so no error manifests at this corner.
    pub masked_no_error: u64,
    /// Runs whose drawn target FP event never fired during replay (e.g. a
    /// trap or the step budget hit before reaching it). Should stay 0 —
    /// targets are drawn from committed golden events, and the identical
    /// prefix guarantees they are reached; a non-zero value flags silent
    /// mis-targeting.
    pub mistargeted: u64,
    /// Runs that panicked on both attempts and were isolated instead of
    /// classified (their repro triples are in
    /// [`CampaignResult::quarantined`]). Should stay 0; a non-zero value
    /// flags a replay-engine bug without invalidating the rest of the
    /// sweep.
    pub quarantined: u64,
}

impl OutcomeCounts {
    pub(crate) fn add(&mut self, o: Outcome) {
        match o {
            Outcome::Masked => self.masked += 1,
            Outcome::Sdc => self.sdc += 1,
            Outcome::Crash => self.crash += 1,
            Outcome::Timeout => self.timeout += 1,
        }
    }

    pub(crate) fn merge(&mut self, other: &OutcomeCounts) {
        self.masked += other.masked;
        self.sdc += other.sdc;
        self.crash += other.crash;
        self.timeout += other.timeout;
        self.masked_wrong_path += other.masked_wrong_path;
        self.masked_no_error += other.masked_no_error;
        self.mistargeted += other.mistargeted;
        self.quarantined += other.quarantined;
    }

    /// Total runs tallied (classified + quarantined).
    pub fn total(&self) -> u64 {
        self.masked + self.sdc + self.crash + self.timeout + self.quarantined
    }
}

/// Repro handle of a run that panicked on both attempts: everything
/// needed to replay it offline (`seed` re-derives the draw; `target` and
/// `mask` are the draw it made, when the panic happened after drawing).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantinedRun {
    /// Run index within the campaign.
    pub run: u64,
    /// The run's derived RNG seed.
    pub seed: u64,
    /// Drawn target FP index (None when the draw itself was unreachable).
    pub target: Option<u64>,
    /// Drawn XOR corruption mask.
    pub mask: u64,
    /// Panic payload of the failing attempt (best effort).
    pub message: String,
}

/// Result of one campaign cell (benchmark × model × VR).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Model family label.
    pub model: String,
    /// Voltage-reduction level.
    pub vr: VoltageReduction,
    /// Outcome tally.
    pub counts: OutcomeCounts,
    /// The model's injected error ratio on this workload — the fraction of
    /// dynamic FP instructions the model deems faulty (paper eq. 2 /
    /// Figure 10).
    pub error_ratio: f64,
    /// Quarantined runs with their repro triples, sorted by run index.
    pub quarantined: Vec<QuarantinedRun>,
}

impl CampaignResult {
    /// Application Vulnerability Metric (paper eq. 4), over classified
    /// runs (quarantined runs carry no outcome and are excluded from both
    /// numerator and denominator).
    pub fn avm(&self) -> f64 {
        let t = self.counts.total() - self.counts.quarantined;
        if t == 0 {
            0.0
        } else {
            (self.counts.sdc + self.counts.crash + self.counts.timeout) as f64 / t as f64
        }
    }

    /// Outcome fractions in `[Masked, SDC, Crash, Timeout]` order.
    pub fn fractions(&self) -> [f64; 4] {
        let t = (self.counts.total() - self.counts.quarantined).max(1) as f64;
        [
            self.counts.masked as f64 / t,
            self.counts.sdc as f64 / t,
            self.counts.crash as f64 / t,
            self.counts.timeout as f64 / t,
        ]
    }
}

/// The model's expected error ratio over a golden run's FP instruction mix.
pub fn model_error_ratio<M: InjectionModel + ?Sized>(model: &M, golden: &GoldenRun) -> f64 {
    if golden.fp_ops == 0 {
        return 0.0;
    }
    let mut expected = 0.0;
    for op in FpOp::all() {
        expected += model.error_ratio(op) * golden.arch_by_op[op.index()].len() as f64;
    }
    expected / golden.fp_ops as f64
}

/// Per-cell draw tables, hoisted out of the per-run loop: event weights
/// per op (architectural + wrong-path writebacks, each weighted by the
/// model's per-instruction error probability). The per-run scan over the
/// 12 entries is kept bit-identical to the original per-run computation.
struct CellPlan {
    weights: [f64; 12],
    total: f64,
}

impl CellPlan {
    fn new<M: InjectionModel + ?Sized>(golden: &GoldenRun, model: &M) -> Self {
        let mut weights = [0f64; 12];
        let mut total = 0.0;
        for op in FpOp::all() {
            let i = op.index();
            let events = golden.arch_by_op[i].len() as f64 + golden.squashed_by_op[i] as f64;
            weights[i] = model.error_ratio(op) * events;
            total += weights[i];
        }
        CellPlan { weights, total }
    }
}

/// Per-cell memoization of replay outcomes: given the same `(target FP
/// index, XOR mask)` pair the corrupted execution is deterministic, so
/// repeated draws across a cell's runs replay only once. The `bool`
/// records whether the target event fired.
type MemoCache = Mutex<HashMap<(u64, u64), (Outcome, bool)>>;

/// Lock a memo-cache mutex, tolerating poisoning: entries are inserted
/// atomically, so a panic in another worker never leaves a torn map.
fn lock_cache(
    cache: &MemoCache,
) -> std::sync::MutexGuard<'_, HashMap<(u64, u64), (Outcome, bool)>> {
    match cache.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// What a run's seeded RNG draw selected, before any replay happens.
/// Pure and panic-free, so quarantine reporting can re-derive the repro
/// triple of a run that panicked mid-replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Draw {
    /// The model predicts no errors anywhere in this execution.
    NoError,
    /// The draw landed on a squashed (wrong-path) writeback.
    WrongPath,
    /// Corrupt FP event `target` with XOR `mask`.
    Inject {
        /// Target dynamic FP index.
        target: u64,
        /// XOR corruption mask.
        mask: u64,
    },
}

/// Tally of one injection run.
struct RunTally {
    outcome: Outcome,
    wrong_path: bool,
    no_error: bool,
    mistargeted: bool,
    target: Option<u64>,
    mask: u64,
}

/// Per-worker replay context: the reusable fork core (checkpointed mode)
/// plus a reference to the shared memo cache.
struct Runner<'a, M: ?Sized> {
    golden: &'a GoldenRun,
    model: &'a M,
    plan: &'a CellPlan,
    timeout_steps: u64,
    /// Reusable core for checkpoint restores; `None` in from-zero mode.
    fork: Option<FuncCore>,
    cache: Option<&'a MemoCache>,
}

impl<'a, M: InjectionModel + ?Sized> Runner<'a, M> {
    fn new(
        golden: &'a GoldenRun,
        model: &'a M,
        plan: &'a CellPlan,
        timeout_steps: u64,
        mode: ReplayMode,
        cache: Option<&'a MemoCache>,
    ) -> Runner<'a, M> {
        let fork = match mode {
            ReplayMode::FromZero => None,
            ReplayMode::Checkpointed { .. } => {
                Some(FuncCore::with_memory(&golden.program, golden.mem_bytes))
            }
        };
        Runner {
            golden,
            model,
            plan,
            timeout_steps,
            fork,
            cache,
        }
    }

    /// Rebuild the fork core after a panic may have left it mid-replay.
    fn reset_fork(&mut self) {
        if self.fork.is_some() {
            self.fork = Some(FuncCore::with_memory(
                &self.golden.program,
                self.golden.mem_bytes,
            ));
        }
    }

    /// Re-derive the run's draw from its seed without replaying anything.
    fn draw(&self, seed: u64) -> Draw {
        let golden = self.golden;
        let mut rng = StdRng::seed_from_u64(seed);
        if self.plan.total <= 0.0 {
            return Draw::NoError;
        }
        // Draw the target operation type.
        let mut draw = rng.gen_range(0.0..self.plan.total);
        let mut op_idx = 11;
        for (i, &w) in self.plan.weights.iter().enumerate() {
            if draw < w {
                op_idx = i;
                break;
            }
            draw -= w;
        }
        let op = FpOp::all()[op_idx];
        let arch_count = golden.arch_by_op[op_idx].len() as u64;
        let squashed = golden.squashed_by_op[op_idx];
        // Wrong-path hit → microarchitectural masking.
        if rng.gen_range(0..arch_count + squashed) >= arch_count {
            return Draw::WrongPath;
        }
        let target = golden.arch_by_op[op_idx][rng.gen_range(0..arch_count as usize)];
        let mask = self.model.sample_mask(op, &mut rng);
        debug_assert_ne!(mask, 0, "models must produce non-empty masks");
        Draw::Inject { target, mask }
    }

    /// Run one injection experiment.
    fn one_run(&mut self, seed: u64) -> RunTally {
        let (target, mask) = match self.draw(seed) {
            Draw::NoError => {
                return RunTally {
                    outcome: Outcome::Masked,
                    wrong_path: false,
                    no_error: true,
                    mistargeted: false,
                    target: None,
                    mask: 0,
                }
            }
            Draw::WrongPath => {
                return RunTally {
                    outcome: Outcome::Masked,
                    wrong_path: true,
                    no_error: false,
                    mistargeted: false,
                    target: None,
                    mask: 0,
                }
            }
            Draw::Inject { target, mask } => (target, mask),
        };

        let (outcome, fired) = if let Some(cache) = self.cache {
            let hit = lock_cache(cache).get(&(target, mask)).copied();
            match hit {
                Some(memoized) => memoized,
                None => {
                    let fresh = self.replay(target, mask);
                    lock_cache(cache).insert((target, mask), fresh);
                    fresh
                }
            }
        } else {
            self.replay(target, mask)
        };
        debug_assert!(fired, "target FP event {target} never fired");
        RunTally {
            outcome,
            wrong_path: false,
            no_error: false,
            mistargeted: !fired,
            target: Some(target),
            mask,
        }
    }

    /// Replay the corrupted execution and classify it.
    fn replay(&mut self, target: u64, mask: u64) -> (Outcome, bool) {
        let golden = self.golden;
        match &mut self.fork {
            // Checkpointed fork-replay with early-convergence cutoff.
            Some(core) => {
                let inj = golden
                    .checkpoints
                    .run_injected(core, self.timeout_steps, target, mask);
                let outcome = match inj.exit {
                    InjectedExit::Converged {
                        output_matches,
                        instructions,
                        checkpoint_instructions,
                    } => {
                        // The rest of the run is identical to the golden
                        // suffix; apply the timeout criterion to the
                        // implied full instruction count.
                        let total = instructions + (golden.instructions - checkpoint_instructions);
                        if total > self.timeout_steps {
                            Outcome::Timeout
                        } else if output_matches {
                            Outcome::Masked
                        } else {
                            Outcome::Sdc
                        }
                    }
                    InjectedExit::Finished(r) => classify(r.exit, &core.output, &golden.output),
                };
                (outcome, inj.fired)
            }
            // Reference engine: full functional replay from instruction 0.
            None => {
                let mut core = FuncCore::with_memory(&golden.program, golden.mem_bytes);
                let mut injected = false;
                let r = core.run_with_hook(self.timeout_steps, &mut |ev| {
                    if ev.index == target {
                        injected = true;
                        ev.result ^ mask
                    } else {
                        ev.result
                    }
                });
                (classify(r.exit, &core.output, &golden.output), injected)
            }
        }
    }
}

/// Map an exit + output comparison to the paper's outcome taxonomy.
fn classify(exit: ExitReason, output: &[u8], golden_output: &[u8]) -> Outcome {
    match exit {
        ExitReason::Trapped(_) => Outcome::Crash,
        ExitReason::Limit => Outcome::Timeout,
        ExitReason::Exited(c) if c != 0 => Outcome::Crash,
        ExitReason::Halted | ExitReason::Exited(_) => {
            if output == golden_output {
                Outcome::Masked
            } else {
                Outcome::Sdc
            }
        }
    }
}

/// Stable 64-bit FNV-1a over the model name — salts the per-cell seed so
/// DA/IA/WA cells at the same VR draw decorrelated outcome streams.
fn model_salt(name: &str) -> u64 {
    fnv64(name.as_bytes())
}

/// The per-run derived seed (stable across engines, thread counts, and
/// resume boundaries — the determinism anchor of the whole campaign
/// layer).
fn run_seed(cell_seed: u64, run: usize) -> u64 {
    cell_seed ^ ((run as u64) << 20)
}

fn cell_seed<M: InjectionModel + ?Sized>(cfg: &CampaignConfig, model: &M) -> u64 {
    // Decorrelate cells that share a base seed: different corners via the
    // VR salt, different model families at the same corner via the model
    // name salt.
    let vr_salt = (model.vr().fraction() * 1e6) as u64;
    cfg.seed
        ^ vr_salt.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ model_salt(model.name()).wrapping_mul(0xff51_afd7_ed55_8ccd)
}

/// Outcome of one panic-isolated injection run.
enum IsolatedRun {
    Tally(
        RunTally,
        /* retried */ bool,
        /* run */ u64,
        /* seed */ u64,
    ),
    Quarantined(QuarantinedRun),
}

/// Execute run `r` behind the panic isolation boundary: a panicking run
/// is retried once with the same draw (same derived seed), and a second
/// panic quarantines it with its repro triple instead of unwinding into
/// the worker pool.
fn run_isolated<M: InjectionModel + ?Sized>(
    runner: &mut Runner<'_, M>,
    chaos: &Chaos,
    r: usize,
    seed: u64,
) -> IsolatedRun {
    for attempt in 0u32..2 {
        let result = catch_unwind(AssertUnwindSafe(|| {
            if chaos.should_panic(r, attempt) {
                panic!("chaos hook: injected panic in run {r}");
            }
            runner.one_run(seed)
        }));
        match result {
            Ok(tally) => return IsolatedRun::Tally(tally, attempt > 0, r as u64, seed),
            Err(payload) => {
                // The panic may have left the reusable fork core (and in
                // principle the memo cache lock) mid-operation; rebuild
                // before the retry touches them.
                runner.reset_fork();
                if attempt == 1 {
                    let message = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    // Re-derive the repro triple without replaying.
                    let (target, mask) = match runner.draw(seed) {
                        Draw::Inject { target, mask } => (Some(target), mask),
                        _ => (None, 0),
                    };
                    return IsolatedRun::Quarantined(QuarantinedRun {
                        run: r as u64,
                        seed,
                        target,
                        mask,
                        message,
                    });
                }
            }
        }
    }
    unreachable!("loop returns on success or second failure")
}

/// Build the journal record and tally delta of one isolated run — the
/// single place a run's outcome becomes durable bytes, shared by the
/// in-process worker pool and the fabric's leased execution.
fn record_of(isolated: IsolatedRun, golden_instructions: u64) -> (RunRecord, OutcomeCounts) {
    match isolated {
        IsolatedRun::Tally(tally, retried, run, seed) => {
            let mut c = OutcomeCounts::default();
            c.add(tally.outcome);
            if tally.wrong_path {
                c.masked_wrong_path += 1;
            }
            if tally.no_error {
                c.masked_no_error += 1;
            }
            if tally.mistargeted {
                c.mistargeted += 1;
            }
            (
                RunRecord {
                    run,
                    seed,
                    target: tally.target,
                    mask: tally.mask,
                    outcome: RecordedOutcome::Classified(tally.outcome),
                    wrong_path: tally.wrong_path,
                    no_error: tally.no_error,
                    mistargeted: tally.mistargeted,
                    retried,
                    instructions: golden_instructions,
                },
                c,
            )
        }
        IsolatedRun::Quarantined(q) => {
            let mut c = OutcomeCounts::default();
            c.quarantined += 1;
            (
                RunRecord {
                    run: q.run,
                    seed: q.seed,
                    target: q.target,
                    mask: q.mask,
                    outcome: RecordedOutcome::Quarantined,
                    wrong_path: false,
                    no_error: false,
                    mistargeted: false,
                    retried: true,
                    instructions: golden_instructions,
                },
                c,
            )
        }
    }
}

/// Fold one journaled record into a running tally — the inverse of
/// [`record_of`], shared by the durable resume path and the fabric's
/// deterministic merge. [`OutcomeCounts`] fields are commutative sums,
/// so the fold order never changes the result.
pub(crate) fn absorb_record(
    counts: &mut OutcomeCounts,
    quarantined: &mut Vec<QuarantinedRun>,
    rec: &RunRecord,
) {
    match rec.outcome {
        RecordedOutcome::Classified(o) => {
            counts.add(o);
            if rec.wrong_path {
                counts.masked_wrong_path += 1;
            }
            if rec.no_error {
                counts.masked_no_error += 1;
            }
            if rec.mistargeted {
                counts.mistargeted += 1;
            }
        }
        RecordedOutcome::Quarantined => {
            counts.quarantined += 1;
            quarantined.push(QuarantinedRun {
                run: rec.run,
                seed: rec.seed,
                target: rec.target,
                mask: rec.mask,
                message: "replayed from journal".to_string(),
            });
        }
    }
}

/// Everything a cell execution produces: merged tallies, quarantine
/// reports, and whether a cooperative stop cut the sweep short.
struct CellOutcome {
    counts: OutcomeCounts,
    quarantined: Vec<QuarantinedRun>,
    interrupted: bool,
}

/// What [`execute_lease`] produced for one leased run range.
#[derive(Debug)]
pub struct LeaseOutcome {
    /// Tally delta of the runs executed under this lease.
    pub counts: OutcomeCounts,
    /// Quarantined runs within the lease, sorted by run index.
    pub quarantined: Vec<QuarantinedRun>,
    /// A shutdown signal cut the lease short (the journal still holds
    /// every completed run).
    pub interrupted: bool,
}

/// The shared worker-pool core of [`run_campaign`],
/// [`run_campaign_durable`], and the fabric's [`execute_lease`]: shard
/// `span` across workers, skip runs already journaled, isolate panics,
/// and (when a journal is present) write-ahead-log every completed run
/// before tallying it.
fn execute_cell<M: InjectionModel + Sync + ?Sized>(
    golden: &GoldenRun,
    model: &M,
    cfg: &CampaignConfig,
    span: std::ops::Range<usize>,
    skip: &HashSet<u64>,
    journal: Option<&Mutex<Journal>>,
    appends: &AtomicU64,
) -> Result<CellOutcome, TeiError> {
    let timeout_steps = (golden.instructions as f64 * cfg.timeout_factor).ceil() as u64;
    let seed = cell_seed(cfg, model);
    let plan = CellPlan::new(golden, model);
    let cache: Option<MemoCache> = match cfg.mode {
        ReplayMode::Checkpointed { memoize: true } => Some(Mutex::new(HashMap::new())),
        _ => None,
    };
    let span_len = span.len();
    let threads = cfg.threads.clamp(1, span_len.max(1));
    let chunk = span_len.div_ceil(threads).max(1);
    let chaos = &cfg.chaos;
    let stop_requested = || {
        crate::shutdown::requested()
            || chaos
                .stop_after_appends
                .is_some_and(|cap| appends.load(Ordering::Relaxed) >= cap)
    };

    type WorkerResult = Result<(OutcomeCounts, Vec<QuarantinedRun>, bool), TeiError>;
    let worker = |lo: usize, hi: usize| -> WorkerResult {
        let mut local = OutcomeCounts::default();
        let mut quarantined = Vec::new();
        let mut interrupted = false;
        let mut runner = Runner::new(
            golden,
            model,
            &plan,
            timeout_steps,
            cfg.mode,
            cache.as_ref(),
        );
        for r in lo..hi {
            if skip.contains(&(r as u64)) {
                continue;
            }
            if journal.is_some() && stop_requested() {
                interrupted = true;
                break;
            }
            if chaos.throttle_ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(chaos.throttle_ms));
            }
            let rs = run_seed(seed, r);
            let isolated = run_isolated(&mut runner, chaos, r, rs);
            if let IsolatedRun::Quarantined(q) = &isolated {
                quarantined.push(q.clone());
            }
            let (record, tally_counts) = record_of(isolated, golden.instructions);
            // WAL discipline: the run only counts once it is durably on
            // disk, so a crash between here and the final tally can at
            // worst lose in-flight runs, never double-count.
            if let Some(journal) = journal {
                let mut j = match journal.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                j.append(&record)?;
                appends.fetch_add(1, Ordering::Relaxed);
            }
            local.merge(&tally_counts);
        }
        Ok((local, quarantined, interrupted))
    };

    let mut counts = OutcomeCounts::default();
    let mut quarantined = Vec::new();
    let mut interrupted = false;
    let joined: Result<Vec<WorkerResult>, _> = crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let lo = span.start + t * chunk;
            let hi = (span.start + (t + 1) * chunk).min(span.end);
            if lo >= hi {
                break;
            }
            let worker = &worker;
            handles.push(scope.spawn(move |_| worker(lo, hi)));
        }
        handles
            .into_iter()
            .map(|h| h.join().map_err(|_| TeiError::WorkerPool("campaign cell")))
            .collect()
    })
    .map_err(|_| TeiError::WorkerPool("campaign scope"))?;
    for wr in joined? {
        let (c, q, i) = wr?;
        counts.merge(&c);
        quarantined.extend(q);
        interrupted |= i;
    }
    quarantined.sort_by_key(|q| q.run);
    Ok(CellOutcome {
        counts,
        quarantined,
        interrupted,
    })
}

/// Execute the leased run range `[lo, hi)` of a campaign cell, appending
/// every completed run to `journal` before tallying it — the fabric
/// worker's entry point. Runs in `skip` (already in this worker's
/// journal) are not re-executed. Outcomes are identical to the same runs
/// executed by [`run_campaign_durable`]: the per-run derived seed depends
/// only on the cell seed and the run index, never on which process or
/// lease executed it.
///
/// # Errors
///
/// [`TeiError::Config`] for unusable sizing knobs or an out-of-range
/// lease, [`TeiError::Io`] when a journal append fails, and
/// [`TeiError::WorkerPool`] if the in-process pool cannot be joined.
pub fn execute_lease<M: InjectionModel + Sync + ?Sized>(
    golden: &GoldenRun,
    model: &M,
    cfg: &CampaignConfig,
    lo: u64,
    hi: u64,
    skip: &HashSet<u64>,
    journal: &Mutex<Journal>,
) -> Result<LeaseOutcome, TeiError> {
    cfg.validate()?;
    if lo >= hi || hi > cfg.runs as u64 {
        return Err(TeiError::Config {
            knob: "lease".to_string(),
            reason: format!("range [{lo}, {hi}) is empty or outside 0..{}", cfg.runs),
        });
    }
    let appends = AtomicU64::new(0);
    let cell = execute_cell(
        golden,
        model,
        cfg,
        lo as usize..hi as usize,
        skip,
        Some(journal),
        &appends,
    )?;
    Ok(LeaseOutcome {
        counts: cell.counts,
        quarantined: cell.quarantined,
        interrupted: cell.interrupted,
    })
}

/// Run a full campaign cell in parallel, surfacing orchestration failures
/// as typed errors.
///
/// # Errors
///
/// [`TeiError::Config`] for unusable sizing knobs and
/// [`TeiError::WorkerPool`] if the worker pool cannot be joined (runs
/// themselves never abort the pool — they are panic-isolated and at worst
/// quarantined).
pub fn run_campaign_checked<M: InjectionModel + Sync + ?Sized>(
    benchmark_name: &str,
    golden: &GoldenRun,
    model: &M,
    cfg: &CampaignConfig,
) -> Result<CampaignResult, TeiError> {
    cfg.validate()?;
    let cell = execute_cell(
        golden,
        model,
        cfg,
        0..cfg.runs,
        &HashSet::new(),
        None,
        &AtomicU64::new(0),
    )?;
    Ok(CampaignResult {
        benchmark: benchmark_name.to_string(),
        model: model.name().to_string(),
        vr: model.vr(),
        counts: cell.counts,
        error_ratio: model_error_ratio(model, golden),
        quarantined: cell.quarantined,
    })
}

/// Run a full campaign cell in parallel.
///
/// # Panics
///
/// Documented invariant: with a default-valid config and no journal, the
/// only failure [`run_campaign_checked`] can surface is a worker-pool
/// join error, which panic isolation makes unreachable short of a runtime
/// bug; an invalid `cfg` is a caller bug at this non-`Result` API.
pub fn run_campaign<M: InjectionModel + Sync + ?Sized>(
    benchmark_name: &str,
    golden: &GoldenRun,
    model: &M,
    cfg: &CampaignConfig,
) -> CampaignResult {
    match run_campaign_checked(benchmark_name, golden, model, cfg) {
        Ok(r) => r,
        Err(e) => panic!("campaign failed: {e}"),
    }
}

/// The durable identity of a campaign cell, used to key its journal.
pub fn campaign_manifest<M: InjectionModel + ?Sized>(
    benchmark_name: &str,
    golden: &GoldenRun,
    model: &M,
    cfg: &CampaignConfig,
) -> CampaignManifest {
    // The model fingerprint folds the per-op error-ratio bit patterns:
    // any recalibration that changes behavior changes the hash.
    let mut ratio_bytes = Vec::with_capacity(12 * 8);
    for op in FpOp::all() {
        ratio_bytes.extend_from_slice(&model.error_ratio(op).to_bits().to_le_bytes());
    }
    ratio_bytes.extend_from_slice(model.name().as_bytes());
    ratio_bytes.extend_from_slice(model.vr().label().as_bytes());
    CampaignManifest {
        version: 1,
        benchmark: benchmark_name.to_string(),
        model: model.name().to_string(),
        vr: model.vr().label(),
        runs: cfg.runs as u64,
        seed: cfg.seed,
        timeout_factor_bits: cfg.timeout_factor.to_bits(),
        golden_instructions: golden.instructions,
        golden_fp_ops: golden.fp_ops,
        golden_output_fnv: fnv64(&golden.output),
        model_fingerprint: fnv64(&ratio_bytes),
    }
}

/// [`run_campaign`] with durability: every completed run is write-ahead-
/// logged to a journal under `journal_dir` before it counts, an existing
/// journal for the same manifest resumes the sweep (skipping completed
/// runs), and SIGINT/SIGTERM drain the workers and flush the journal
/// instead of losing progress. The final [`OutcomeCounts`] of a resumed
/// campaign are byte-identical to an uninterrupted one.
///
/// # Errors
///
/// * [`TeiError::Config`] — malformed env knobs or config fields.
/// * [`TeiError::ManifestMismatch`] — `journal_dir` holds a journal for a
///   different campaign identity (it is refused, never merged).
/// * [`TeiError::JournalCorrupt`] / [`TeiError::Io`] — journal damage
///   beyond torn-tail recovery, or filesystem failures.
/// * [`TeiError::Interrupted`] — a shutdown signal arrived; workers were
///   drained and the journal flushed, so re-running resumes.
pub fn run_campaign_durable<M: InjectionModel + Sync + ?Sized>(
    benchmark_name: &str,
    golden: &GoldenRun,
    model: &M,
    cfg: &CampaignConfig,
    journal_dir: &Path,
) -> Result<CampaignResult, TeiError> {
    crate::config::validate_env()?;
    cfg.validate()?;
    // The deterministic-interrupt chaos hook stands in for a real signal;
    // tests using it must not install process-wide handlers. Every other
    // configuration (including throttled sweeps) wants graceful draining.
    if cfg.chaos.stop_after_appends.is_none() {
        crate::shutdown::install_handlers();
    }
    let manifest = campaign_manifest(benchmark_name, golden, model, cfg);
    let JournalResume {
        journal,
        completed,
        truncated_bytes,
    } = Journal::open_or_create(journal_dir, &manifest)?;
    if truncated_bytes > 0 {
        eprintln!(
            "[journal] recovered {}: dropped {truncated_bytes} torn byte(s) from the tail",
            journal.path().display()
        );
    }

    // Rebuild the partial tally from the journal replay.
    let mut counts = OutcomeCounts::default();
    let mut quarantined = Vec::new();
    let mut skip: HashSet<u64> = HashSet::with_capacity(completed.len());
    for rec in &completed {
        if rec.run >= cfg.runs as u64 || !skip.insert(rec.run) {
            // Out-of-range or duplicate records cannot come from this
            // manifest's own append path; refuse rather than double-count.
            return Err(TeiError::JournalCorrupt {
                path: journal.path().to_path_buf(),
                reason: format!("record for run {} is out of range or duplicated", rec.run),
            });
        }
        absorb_record(&mut counts, &mut quarantined, rec);
    }
    if !completed.is_empty() {
        eprintln!(
            "[journal] resuming {benchmark_name}/{}/{}: {} of {} runs already recorded",
            manifest.model,
            manifest.vr,
            skip.len(),
            cfg.runs
        );
    }

    let journal = Mutex::new(journal);
    let appends = AtomicU64::new(0);
    let cell = execute_cell(
        golden,
        model,
        cfg,
        0..cfg.runs,
        &skip,
        Some(&journal),
        &appends,
    )?;
    counts.merge(&cell.counts);
    quarantined.extend(cell.quarantined);
    quarantined.sort_by_key(|q| q.run);

    if cell.interrupted && counts.total() < cfg.runs as u64 {
        // Workers drained; the journal holds every completed run. fsync'd
        // appends mean there is nothing further to flush.
        return Err(TeiError::Interrupted {
            completed: counts.total(),
            requested: cfg.runs as u64,
        });
    }
    Ok(CampaignResult {
        benchmark: benchmark_name.to_string(),
        model: model.name().to_string(),
        vr: model.vr(),
        counts,
        error_ratio: model_error_ratio(model, golden),
        quarantined,
    })
}
