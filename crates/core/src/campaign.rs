//! Application evaluation phase: microarchitecture-aware injection
//! campaigns (paper Section III.B and V).
//!
//! Each campaign cell runs the target benchmark once on the detailed
//! out-of-order core (golden run, recording the cycle-stamped FP writeback
//! timeline including wrong-path events) and once functionally (golden
//! output). Every injection run then draws one FP writeback event from the
//! timeline weighted by the model's per-instruction error probability;
//! events on the wrong path classify as microarchitecturally masked, and
//! architectural events are corrupted in a fast functional replay whose
//! outcome is classified as Masked / SDC / Crash / Timeout against the
//! golden output (Section IV.A), with the paper's 2× timeout criterion.

use crate::models::InjectionModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Mutex;
use tei_softfloat::FpOp;
use tei_timing::VoltageReduction;
use tei_uarch::{
    CheckpointPool, CheckpointRecorder, ExitReason, FuncCore, InjectedExit, OooConfig, OooCore,
};
use tei_workloads::Benchmark;

/// Injection-run outcome categories (paper Section IV.A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Outcome {
    /// Execution and output identical to the error-free run.
    Masked,
    /// Completed with different output, no observable indication.
    Sdc,
    /// Process/system crash or floating-point exception.
    Crash,
    /// Did not finish within 2× the error-free execution time.
    Timeout,
}

impl Outcome {
    /// All four categories, paper order.
    pub fn all() -> [Outcome; 4] {
        [
            Outcome::Masked,
            Outcome::Sdc,
            Outcome::Crash,
            Outcome::Timeout,
        ]
    }

    /// Paper label.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Masked => "Masked",
            Outcome::Sdc => "SDC",
            Outcome::Crash => "Crash",
            Outcome::Timeout => "Timeout",
        }
    }
}

/// Golden-run record shared by all injection runs of a benchmark.
#[derive(Debug, Clone)]
pub struct GoldenRun {
    program: tei_isa::Program,
    mem_bytes: usize,
    /// Error-free output bytes.
    pub output: Vec<u8>,
    /// Error-free retired instruction count.
    pub instructions: u64,
    /// Error-free dynamic FP operation count.
    pub fp_ops: u64,
    /// Error-free detailed-core cycle count.
    pub cycles: u64,
    /// Committed arch FP indices per operation type.
    pub arch_by_op: Vec<Vec<u64>>,
    /// Wrong-path (squashed) FP writebacks per operation type.
    pub squashed_by_op: Vec<u64>,
    /// Detailed-core statistics of the golden run.
    pub ooo_stats: tei_uarch::OooStats,
    /// Golden-run checkpoints for the fork-replay engine, shared by all
    /// campaign workers (cheap `Arc` clone).
    pub checkpoints: CheckpointPool,
}

impl GoldenRun {
    /// Execute the golden detailed + functional runs with the default
    /// checkpoint interval (`TEI_CHECKPOINT_INTERVAL`, auto when unset).
    ///
    /// # Panics
    ///
    /// Panics if the error-free benchmark does not complete successfully or
    /// the two cores disagree (which the co-simulation tests rule out).
    pub fn capture(bench: &Benchmark, mem_bytes: usize, max_cycles: u64) -> Self {
        Self::capture_with_checkpoints(
            bench,
            mem_bytes,
            max_cycles,
            crate::config::default_checkpoint_interval(),
        )
    }

    /// [`GoldenRun::capture`] with an explicit checkpoint spacing in
    /// dynamic FP operations (0 selects the auto policy). The spacing only
    /// affects replay speed, never campaign outcomes.
    ///
    /// # Panics
    ///
    /// See [`GoldenRun::capture`].
    pub fn capture_with_checkpoints(
        bench: &Benchmark,
        mem_bytes: usize,
        max_cycles: u64,
        checkpoint_interval: u64,
    ) -> Self {
        let mut ooo = OooCore::with_memory(&bench.program, OooConfig::default(), mem_bytes);
        let od = ooo.run(max_cycles);
        assert!(
            od.exit.is_success(),
            "golden detailed run of {} failed: {:?}",
            bench.id,
            od.exit
        );
        let mut func = FuncCore::with_memory(&bench.program, mem_bytes);
        let mut recorder = CheckpointRecorder::new(&func, checkpoint_interval);
        let mut op_of: Vec<FpOp> = Vec::new();
        // Manual run loop so checkpoints are captured at instruction
        // boundaries whenever the FP-op counter crosses the next mark.
        let exit = loop {
            recorder.observe(&func);
            match func.step(&mut |ev| {
                op_of.push(ev.op);
                ev.result
            }) {
                Ok(None) => {}
                Ok(Some(exit)) => break exit,
                Err(trap) => break ExitReason::Trapped(trap),
            }
        };
        assert!(
            matches!(exit, ExitReason::Halted | ExitReason::Exited(0)),
            "golden functional run failed: {exit:?}"
        );
        assert_eq!(func.output, ooo.output, "core disagreement in golden run");
        let mut arch_by_op: Vec<Vec<u64>> = vec![Vec::new(); 12];
        for (i, op) in op_of.iter().enumerate() {
            arch_by_op[op.index()].push(i as u64);
        }
        let mut squashed_by_op = vec![0u64; 12];
        for ev in &ooo.fp_timeline {
            if ev.arch_index.is_none() {
                squashed_by_op[ev.op.index()] += 1;
            }
        }
        GoldenRun {
            program: bench.program.clone(),
            mem_bytes,
            instructions: func.instructions(),
            fp_ops: func.fp_ops(),
            output: func.output,
            cycles: ooo.stats.cycles,
            arch_by_op,
            squashed_by_op,
            ooo_stats: ooo.stats.clone(),
            checkpoints: recorder.finish(),
        }
    }
}

/// How each injection run replays the corrupted execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplayMode {
    /// Fresh core per run, full re-execution from instruction zero (the
    /// original engine; kept as the reference baseline).
    FromZero,
    /// Fork from the nearest golden checkpoint, fast-forward hook-free to
    /// the target, and cut the run short on state re-convergence.
    /// `memoize` additionally dedupes repeated `(target, mask)` draws
    /// behind a per-cell concurrent map (outcomes are deterministic given
    /// the pair, so only unique pairs are replayed).
    Checkpointed {
        /// Enable the `(target, mask)` outcome cache.
        memoize: bool,
    },
}

impl Default for ReplayMode {
    fn default() -> Self {
        ReplayMode::Checkpointed { memoize: true }
    }
}

/// Campaign sizing and determinism knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Injection runs (paper: 1068 for 3 % margin / 95 % confidence).
    pub runs: usize,
    /// Base RNG seed (each run derives its own).
    pub seed: u64,
    /// Timeout threshold as a multiple of the error-free instruction count.
    pub timeout_factor: f64,
    /// Worker threads.
    pub threads: usize,
    /// Replay engine. Outcome tallies are byte-identical across modes and
    /// thread counts; only wall-clock differs.
    pub mode: ReplayMode,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            runs: crate::config::default_runs(),
            seed: 0x7e1_c0de,
            timeout_factor: 2.0,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            mode: ReplayMode::default(),
        }
    }
}

/// Outcome tally of one campaign cell.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeCounts {
    /// Masked runs (total, including the microarchitectural subset).
    pub masked: u64,
    /// Silent data corruptions.
    pub sdc: u64,
    /// Crashes.
    pub crash: u64,
    /// Timeouts.
    pub timeout: u64,
    /// Subset of `masked`: injection landed on a squashed (wrong-path)
    /// instruction.
    pub masked_wrong_path: u64,
    /// Subset of `masked`: the model assigned zero error probability to
    /// every executed instruction, so no error manifests at this corner.
    pub masked_no_error: u64,
    /// Runs whose drawn target FP event never fired during replay (e.g. a
    /// trap or the step budget hit before reaching it). Should stay 0 —
    /// targets are drawn from committed golden events, and the identical
    /// prefix guarantees they are reached; a non-zero value flags silent
    /// mis-targeting.
    pub mistargeted: u64,
}

impl OutcomeCounts {
    fn add(&mut self, o: Outcome) {
        match o {
            Outcome::Masked => self.masked += 1,
            Outcome::Sdc => self.sdc += 1,
            Outcome::Crash => self.crash += 1,
            Outcome::Timeout => self.timeout += 1,
        }
    }

    fn merge(&mut self, other: &OutcomeCounts) {
        self.masked += other.masked;
        self.sdc += other.sdc;
        self.crash += other.crash;
        self.timeout += other.timeout;
        self.masked_wrong_path += other.masked_wrong_path;
        self.masked_no_error += other.masked_no_error;
        self.mistargeted += other.mistargeted;
    }

    /// Total runs tallied.
    pub fn total(&self) -> u64 {
        self.masked + self.sdc + self.crash + self.timeout
    }
}

/// Result of one campaign cell (benchmark × model × VR).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Model family label.
    pub model: String,
    /// Voltage-reduction level.
    pub vr: VoltageReduction,
    /// Outcome tally.
    pub counts: OutcomeCounts,
    /// The model's injected error ratio on this workload — the fraction of
    /// dynamic FP instructions the model deems faulty (paper eq. 2 /
    /// Figure 10).
    pub error_ratio: f64,
}

impl CampaignResult {
    /// Application Vulnerability Metric (paper eq. 4).
    pub fn avm(&self) -> f64 {
        let t = self.counts.total();
        if t == 0 {
            0.0
        } else {
            (self.counts.sdc + self.counts.crash + self.counts.timeout) as f64 / t as f64
        }
    }

    /// Outcome fractions in `[Masked, SDC, Crash, Timeout]` order.
    pub fn fractions(&self) -> [f64; 4] {
        let t = self.counts.total().max(1) as f64;
        [
            self.counts.masked as f64 / t,
            self.counts.sdc as f64 / t,
            self.counts.crash as f64 / t,
            self.counts.timeout as f64 / t,
        ]
    }
}

/// The model's expected error ratio over a golden run's FP instruction mix.
pub fn model_error_ratio<M: InjectionModel + ?Sized>(model: &M, golden: &GoldenRun) -> f64 {
    if golden.fp_ops == 0 {
        return 0.0;
    }
    let mut expected = 0.0;
    for op in FpOp::all() {
        expected += model.error_ratio(op) * golden.arch_by_op[op.index()].len() as f64;
    }
    expected / golden.fp_ops as f64
}

/// Per-cell draw tables, hoisted out of the per-run loop: event weights
/// per op (architectural + wrong-path writebacks, each weighted by the
/// model's per-instruction error probability). The per-run scan over the
/// 12 entries is kept bit-identical to the original per-run computation.
struct CellPlan {
    weights: [f64; 12],
    total: f64,
}

impl CellPlan {
    fn new<M: InjectionModel + ?Sized>(golden: &GoldenRun, model: &M) -> Self {
        let mut weights = [0f64; 12];
        let mut total = 0.0;
        for op in FpOp::all() {
            let i = op.index();
            let events = golden.arch_by_op[i].len() as f64 + golden.squashed_by_op[i] as f64;
            weights[i] = model.error_ratio(op) * events;
            total += weights[i];
        }
        CellPlan { weights, total }
    }
}

/// Per-cell memoization of replay outcomes: given the same `(target FP
/// index, XOR mask)` pair the corrupted execution is deterministic, so
/// repeated draws across a cell's runs replay only once. The `bool`
/// records whether the target event fired.
type MemoCache = Mutex<HashMap<(u64, u64), (Outcome, bool)>>;

/// Tally of one injection run.
struct RunTally {
    outcome: Outcome,
    wrong_path: bool,
    no_error: bool,
    mistargeted: bool,
}

/// Per-worker replay context: the reusable fork core (checkpointed mode)
/// plus a reference to the shared memo cache.
struct Runner<'a, M: ?Sized> {
    golden: &'a GoldenRun,
    model: &'a M,
    plan: &'a CellPlan,
    timeout_steps: u64,
    /// Reusable core for checkpoint restores; `None` in from-zero mode.
    fork: Option<FuncCore>,
    cache: Option<&'a MemoCache>,
}

impl<'a, M: InjectionModel + ?Sized> Runner<'a, M> {
    fn new(
        golden: &'a GoldenRun,
        model: &'a M,
        plan: &'a CellPlan,
        timeout_steps: u64,
        mode: ReplayMode,
        cache: Option<&'a MemoCache>,
    ) -> Runner<'a, M> {
        let fork = match mode {
            ReplayMode::FromZero => None,
            ReplayMode::Checkpointed { .. } => {
                Some(FuncCore::with_memory(&golden.program, golden.mem_bytes))
            }
        };
        Runner {
            golden,
            model,
            plan,
            timeout_steps,
            fork,
            cache,
        }
    }

    /// Run one injection experiment.
    fn one_run(&mut self, seed: u64) -> RunTally {
        let golden = self.golden;
        let mut rng = StdRng::seed_from_u64(seed);
        if self.plan.total <= 0.0 {
            // The model predicts no errors anywhere in this execution.
            return RunTally {
                outcome: Outcome::Masked,
                wrong_path: false,
                no_error: true,
                mistargeted: false,
            };
        }
        // Draw the target operation type.
        let mut draw = rng.gen_range(0.0..self.plan.total);
        let mut op_idx = 11;
        for (i, &w) in self.plan.weights.iter().enumerate() {
            if draw < w {
                op_idx = i;
                break;
            }
            draw -= w;
        }
        let op = FpOp::all()[op_idx];
        let arch_count = golden.arch_by_op[op_idx].len() as u64;
        let squashed = golden.squashed_by_op[op_idx];
        // Wrong-path hit → microarchitectural masking.
        if rng.gen_range(0..arch_count + squashed) >= arch_count {
            return RunTally {
                outcome: Outcome::Masked,
                wrong_path: true,
                no_error: false,
                mistargeted: false,
            };
        }
        let target = golden.arch_by_op[op_idx][rng.gen_range(0..arch_count as usize)];
        let mask = self.model.sample_mask(op, &mut rng);
        debug_assert_ne!(mask, 0, "models must produce non-empty masks");

        let (outcome, fired) = if let Some(cache) = self.cache {
            let hit = cache
                .lock()
                .expect("memo cache")
                .get(&(target, mask))
                .copied();
            match hit {
                Some(memoized) => memoized,
                None => {
                    let fresh = self.replay(target, mask);
                    cache
                        .lock()
                        .expect("memo cache")
                        .insert((target, mask), fresh);
                    fresh
                }
            }
        } else {
            self.replay(target, mask)
        };
        debug_assert!(fired, "target FP event {target} never fired");
        RunTally {
            outcome,
            wrong_path: false,
            no_error: false,
            mistargeted: !fired,
        }
    }

    /// Replay the corrupted execution and classify it.
    fn replay(&mut self, target: u64, mask: u64) -> (Outcome, bool) {
        let golden = self.golden;
        match &mut self.fork {
            // Checkpointed fork-replay with early-convergence cutoff.
            Some(core) => {
                let inj = golden
                    .checkpoints
                    .run_injected(core, self.timeout_steps, target, mask);
                let outcome = match inj.exit {
                    InjectedExit::Converged {
                        output_matches,
                        instructions,
                        checkpoint_instructions,
                    } => {
                        // The rest of the run is identical to the golden
                        // suffix; apply the timeout criterion to the
                        // implied full instruction count.
                        let total = instructions + (golden.instructions - checkpoint_instructions);
                        if total > self.timeout_steps {
                            Outcome::Timeout
                        } else if output_matches {
                            Outcome::Masked
                        } else {
                            Outcome::Sdc
                        }
                    }
                    InjectedExit::Finished(r) => classify(r.exit, &core.output, &golden.output),
                };
                (outcome, inj.fired)
            }
            // Reference engine: full functional replay from instruction 0.
            None => {
                let mut core = FuncCore::with_memory(&golden.program, golden.mem_bytes);
                let mut injected = false;
                let r = core.run_with_hook(self.timeout_steps, &mut |ev| {
                    if ev.index == target {
                        injected = true;
                        ev.result ^ mask
                    } else {
                        ev.result
                    }
                });
                (classify(r.exit, &core.output, &golden.output), injected)
            }
        }
    }
}

/// Map an exit + output comparison to the paper's outcome taxonomy.
fn classify(exit: ExitReason, output: &[u8], golden_output: &[u8]) -> Outcome {
    match exit {
        ExitReason::Trapped(_) => Outcome::Crash,
        ExitReason::Limit => Outcome::Timeout,
        ExitReason::Exited(c) if c != 0 => Outcome::Crash,
        ExitReason::Halted | ExitReason::Exited(_) => {
            if output == golden_output {
                Outcome::Masked
            } else {
                Outcome::Sdc
            }
        }
    }
}

/// Stable 64-bit FNV-1a over the model name — salts the per-cell seed so
/// DA/IA/WA cells at the same VR draw decorrelated outcome streams.
fn model_salt(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run a full campaign cell in parallel.
pub fn run_campaign<M: InjectionModel + Sync + ?Sized>(
    benchmark_name: &str,
    golden: &GoldenRun,
    model: &M,
    cfg: &CampaignConfig,
) -> CampaignResult {
    let timeout_steps = (golden.instructions as f64 * cfg.timeout_factor).ceil() as u64;
    // Decorrelate cells that share a base seed: different corners via the
    // VR salt, different model families at the same corner via the model
    // name salt.
    let vr_salt = (model.vr().fraction() * 1e6) as u64;
    let seed = cfg.seed
        ^ vr_salt.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ model_salt(model.name()).wrapping_mul(0xff51_afd7_ed55_8ccd);
    let plan = CellPlan::new(golden, model);
    let cache: Option<MemoCache> = match cfg.mode {
        ReplayMode::Checkpointed { memoize: true } => Some(Mutex::new(HashMap::new())),
        _ => None,
    };
    let runs = cfg.runs;
    let threads = cfg.threads.clamp(1, runs.max(1));
    let chunk = runs.div_ceil(threads);
    let mut counts = OutcomeCounts::default();
    crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(runs);
            if lo >= hi {
                break;
            }
            let (plan, cache) = (&plan, cache.as_ref());
            handles.push(scope.spawn(move |_| {
                let mut local = OutcomeCounts::default();
                let mut runner = Runner::new(golden, model, plan, timeout_steps, cfg.mode, cache);
                for r in lo..hi {
                    let tally = runner.one_run(seed ^ ((r as u64) << 20));
                    local.add(tally.outcome);
                    if tally.wrong_path {
                        local.masked_wrong_path += 1;
                    }
                    if tally.no_error {
                        local.masked_no_error += 1;
                    }
                    if tally.mistargeted {
                        local.mistargeted += 1;
                    }
                }
                local
            }));
        }
        for h in handles {
            counts.merge(&h.join().expect("campaign worker panicked"));
        }
    })
    .expect("campaign scope");
    CampaignResult {
        benchmark: benchmark_name.to_string(),
        model: model.name().to_string(),
        vr: model.vr(),
        counts,
        error_ratio: model_error_ratio(model, golden),
    }
}
