//! Fabric merge determinism: K per-worker journals produced under
//! random lease splits, random worker assignment, re-executed
//! (duplicated) leases, and torn-tail crashes must merge into a
//! `CampaignResult` byte-identical to the single-process durable run —
//! quarantine records included. This is the property the whole fabric
//! rests on (see DESIGN.md, "Campaign fabric": the determinism
//! argument).

use proptest::prelude::*;
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};
use tei_core::campaign::{self, execute_lease, GoldenRun};
use tei_core::fabric::{merged_result, scan_journals};
use tei_core::journal::{CampaignManifest, Journal};
use tei_core::DaModel;
use tei_timing::VoltageReduction;
use tei_workloads::{build, BenchmarkId, Scale};

const MEM: usize = 8 << 20;
const RUNS: usize = 48;

fn golden() -> &'static GoldenRun {
    static GOLDEN: OnceLock<GoldenRun> = OnceLock::new();
    GOLDEN.get_or_init(|| {
        let bench = build(BenchmarkId::Sobel, Scale::Test);
        GoldenRun::capture(&bench, MEM, u64::MAX).expect("golden run")
    })
}

fn model() -> DaModel {
    DaModel::from_fixed(VoltageReduction::VR20, 1e-2)
}

/// Campaign sizing shared by the reference and every worker. Two
/// poisoned runs, so quarantine records cross the merge too.
fn cfg() -> campaign::CampaignConfig {
    let mut c = campaign::CampaignConfig {
        runs: RUNS,
        seed: 7,
        threads: 2,
        ..Default::default()
    };
    c.chaos.panic_always = vec![3, 17];
    c
}

fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("tei-fabric-merge-{}-{tag}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// The single-process ground truth, serialized once for the whole
/// binary (golden capture + 48 runs are the expensive part).
fn reference_json() -> &'static str {
    static REF: OnceLock<String> = OnceLock::new();
    REF.get_or_init(|| {
        let dir = scratch_dir("ref");
        let fresh = campaign::run_campaign_durable("sobel", golden(), &model(), &cfg(), &dir)
            .expect("reference campaign");
        // Replay the finished journal: every statistic is identical, and
        // the free-text quarantine message normalizes to the journal's
        // "replayed" diagnostic — the form any journal-derived result
        // (single-process resume or fabric merge alike) reports, since
        // panic payloads are diagnostics, not part of the record.
        let replayed = campaign::run_campaign_durable("sobel", golden(), &model(), &cfg(), &dir)
            .expect("replayed reference");
        assert_eq!(
            serde_json::to_string(&fresh.counts).expect("serialize fresh counts"),
            serde_json::to_string(&replayed.counts).expect("serialize replayed counts"),
            "journal replay changed the tally"
        );
        assert_eq!(fresh.quarantined.len(), replayed.quarantined.len());
        std::fs::remove_dir_all(&dir).ok();
        serde_json::to_string(&replayed).expect("serialize reference")
    })
}

/// Execute runs `[lo, hi)` into worker `widx`'s own journal, exactly the
/// way [`tei_core::fabric::worker_main`] does: resume the journal, skip
/// what it already holds, append the rest.
fn execute_into(dir: &Path, manifest: &CampaignManifest, widx: u32, lo: u64, hi: u64) {
    let path = dir.join(manifest.worker_file_name(widx));
    let resume = Journal::open_or_create_at(&path, manifest).expect("open worker journal");
    let done: HashSet<u64> = resume.completed.iter().map(|r| r.run).collect();
    let journal = Mutex::new(resume.journal);
    let out =
        execute_lease(golden(), &model(), &cfg(), lo, hi, &done, &journal).expect("execute lease");
    assert!(!out.interrupted, "no signal expected in-process");
}

/// SIGKILL-mid-append simulation: chop `bytes` off a journal's tail,
/// but never into the magic + manifest header (a torn header is a
/// different failure class — creation is atomic, so it cannot happen).
fn tear_tail(path: &Path, header_len: u64, bytes: u64) {
    let len = std::fs::metadata(path).expect("journal metadata").len();
    let keep = len.saturating_sub(bytes).max(header_len);
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(path)
        .expect("open journal for tearing");
    f.set_len(keep).expect("tear tail");
}

/// Group sorted run indices into maximal contiguous `[lo, hi)` ranges.
fn contiguous(missing: &[u64]) -> Vec<(u64, u64)> {
    let mut ranges: Vec<(u64, u64)> = Vec::new();
    for &r in missing {
        match ranges.last_mut() {
            Some((_, hi)) if *hi == r => *hi += 1,
            _ => ranges.push((r, r + 1)),
        }
    }
    ranges
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The acceptance property: for K ∈ {1, 2, 4, 8} workers, any lease
    /// split, any assignment, one reassigned (duplicated) lease, and a
    /// torn journal tail with resume, the merged result is byte-identical
    /// to the single-process campaign. (The vendored proptest shim has no
    /// collection/sample strategies, so split and schedule derive from
    /// plain seeds via xorshift — still a pure function of the inputs.)
    #[test]
    fn k_worker_journals_merge_byte_identical(
        k in prop_oneof![Just(1u32), Just(2u32), Just(4u32), Just(8u32)],
        ncuts in 0usize..8,
        assign_seed in any::<u64>(),
        // 0 means "no crash this case".
        tear in prop_oneof![Just(0u64), 20u64..200],
    ) {
        let dir = scratch_dir("case");
        let manifest = campaign::campaign_manifest("sobel", golden(), &model(), &cfg());
        // Header length, measured on a throwaway file the merge's name
        // filter ignores — bounds how deep a tear may cut.
        let probe = dir.join("header-probe");
        drop(Journal::open_or_create_at(&probe, &manifest).expect("probe journal"));
        let header_len = std::fs::metadata(&probe).expect("probe metadata").len();

        let mut state = assign_seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };

        // Random lease split of the run-index space.
        let mut bounds: Vec<u64> = (0..ncuts).map(|_| 1 + next() % (RUNS as u64 - 1)).collect();
        bounds.push(0);
        bounds.push(RUNS as u64);
        bounds.sort_unstable();
        bounds.dedup();
        let leases: Vec<(u64, u64)> = bounds.windows(2).map(|w| (w[0], w[1])).collect();
        let owners: Vec<u32> = leases.iter().map(|_| (next() % u64::from(k)) as u32).collect();
        for (&(lo, hi), &w) in leases.iter().zip(&owners) {
            execute_into(&dir, &manifest, w, lo, hi);
        }

        // A reassigned lease: a second worker re-executes a range the
        // owner already journaled (the owner was presumed dead but its
        // journal survived). Records are byte-identical, so the merge
        // must deduplicate, never double-count.
        if k > 1 {
            let i = (next() % leases.len() as u64) as usize;
            let (lo, hi) = leases[i];
            let other = (owners[i] + 1) % k;
            execute_into(&dir, &manifest, other, lo, hi);
            let merged = scan_journals(&dir, &manifest).expect("scan with duplicates");
            prop_assert_eq!(merged.duplicates, hi - lo, "one duplicate per re-executed run");
        }

        // Crash mid-append: tear bytes off one worker's journal tail,
        // then resume by granting the now-missing runs to a fresh worker.
        if tear > 0 {
            tear_tail(&dir.join(manifest.worker_file_name(owners[0])), header_len, tear);
        }
        let merged = scan_journals(&dir, &manifest).expect("scan after tear");
        for (lo, hi) in contiguous(&merged.missing(RUNS as u64)) {
            execute_into(&dir, &manifest, k, lo, hi);
        }

        let result = merged_result("sobel", golden(), &model(), &manifest, &dir).expect("merge");
        prop_assert_eq!(
            serde_json::to_string(&result).expect("serialize merged"),
            reference_json(),
            "k={} leases={:?} diverged from the single-process campaign", k, leases
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// An incomplete campaign must be refused by the merge, not averaged.
#[test]
fn merge_refuses_missing_runs() {
    let dir = scratch_dir("incomplete");
    let manifest = campaign::campaign_manifest("sobel", golden(), &model(), &cfg());
    execute_into(&dir, &manifest, 0, 0, 10);
    let err = merged_result("sobel", golden(), &model(), &manifest, &dir)
        .expect_err("merge of 10/48 runs must fail");
    assert!(
        err.to_string().contains("missing"),
        "error should name the gap: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
