//! Fork-replay engine equivalence: checkpoint-restored (and memoized)
//! campaigns must produce **byte-identical** `OutcomeCounts` to the
//! original replay-from-zero path, across benchmarks, thread counts, and
//! checkpoint intervals. This is the executable contract behind defaulting
//! `CampaignConfig::mode` to the checkpointed engine.

use rand::Rng;
use tei_core::{
    campaign::{self, CampaignConfig, GoldenRun, ReplayMode},
    models::InjectionModel,
    DaModel,
};
use tei_softfloat::FpOp;
use tei_timing::VoltageReduction;
use tei_workloads::{build, BenchmarkId, Scale};

const MEM: usize = 8 << 20;
const RUNS: usize = 48;

/// A synthetic model with op-dependent error ratios and correlated
/// multi-bit masks, exercising replay paths the single-bit DA model
/// cannot (multi-bit corruption, op-weighted target draws).
struct MultiBitModel;

impl InjectionModel for MultiBitModel {
    fn name(&self) -> &'static str {
        "test-multibit"
    }

    fn vr(&self) -> VoltageReduction {
        VoltageReduction::VR20
    }

    fn error_ratio(&self, op: FpOp) -> f64 {
        // Weight arithmetic more heavily than conversions/moves.
        0.002 + 0.01 * (op.index() as f64 / 12.0)
    }

    fn sample_mask(&self, op: FpOp, rng: &mut dyn rand::RngCore) -> u64 {
        let bits = op.result_bits();
        let a = rng.gen_range(0..bits);
        let b = rng.gen_range(0..bits);
        (1u64 << a) | (1u64 << b) | 1
    }
}

fn campaign_counts(
    golden: &GoldenRun,
    model: &(impl InjectionModel + Sync),
    mode: ReplayMode,
    threads: usize,
) -> campaign::OutcomeCounts {
    let cfg = CampaignConfig {
        runs: RUNS,
        seed: 0xfeed_beef,
        threads,
        mode,
        ..Default::default()
    };
    let r = campaign::run_campaign("equiv", golden, model, &cfg);
    assert_eq!(r.counts.total(), RUNS as u64);
    assert_eq!(r.counts.mistargeted, 0, "drawn targets must always fire");
    r.counts
}

fn assert_all_modes_equivalent(golden: &GoldenRun, model: &(impl InjectionModel + Sync)) {
    let reference = campaign_counts(golden, model, ReplayMode::FromZero, 1);
    for threads in [1usize, 3] {
        for mode in [
            ReplayMode::FromZero,
            ReplayMode::Checkpointed { memoize: false },
            ReplayMode::Checkpointed { memoize: true },
        ] {
            let counts = campaign_counts(golden, model, mode, threads);
            assert_eq!(
                counts,
                reference,
                "{} diverged: mode {mode:?}, {threads} threads",
                model.name()
            );
        }
    }
}

#[test]
fn checkpointed_replay_matches_from_zero_across_intervals() {
    let bench = build(BenchmarkId::Is, Scale::Test);
    let da = DaModel::from_fixed(VoltageReduction::VR20, 1e-2);
    // Checkpoint spacing is a pure performance knob: every interval must
    // yield the same tally, including pathological spacing (1) that forces
    // the recorder's adaptive thinning.
    for interval in [0u64, 1, 37, 1 << 30] {
        let golden = GoldenRun::capture_with_checkpoints(&bench, MEM, u64::MAX, interval).unwrap();
        assert_all_modes_equivalent(&golden, &da);
    }
}

#[test]
fn checkpointed_replay_matches_from_zero_multibit() {
    let bench = build(BenchmarkId::Sobel, Scale::Test);
    let golden = GoldenRun::capture(&bench, MEM, u64::MAX).unwrap();
    assert_all_modes_equivalent(&golden, &MultiBitModel);
    let da = DaModel::from_fixed(VoltageReduction::VR20, 5e-3);
    assert_all_modes_equivalent(&golden, &da);
}

#[test]
fn model_name_decorrelates_seed_streams() {
    // Two models with identical error behavior but different names must
    // draw decorrelated per-run streams (the model-name seed salt).
    struct Renamed(&'static str);
    impl InjectionModel for Renamed {
        fn name(&self) -> &'static str {
            self.0
        }
        fn vr(&self) -> VoltageReduction {
            VoltageReduction::VR20
        }
        fn error_ratio(&self, _op: FpOp) -> f64 {
            0.01
        }
        fn sample_mask(&self, op: FpOp, rng: &mut dyn rand::RngCore) -> u64 {
            1u64 << rng.gen_range(0..op.result_bits())
        }
    }
    let bench = build(BenchmarkId::Is, Scale::Test);
    let golden = GoldenRun::capture(&bench, MEM, u64::MAX).unwrap();
    let a = campaign_counts(&golden, &Renamed("alpha"), ReplayMode::default(), 2);
    let b = campaign_counts(&golden, &Renamed("beta"), ReplayMode::default(), 2);
    assert_ne!(
        a, b,
        "identical behavior under different names should draw different streams"
    );
}
