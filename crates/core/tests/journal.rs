//! Durability integration tests: torn-write recovery, checksum
//! corruption, manifest mismatch refusal, panic quarantine, and
//! kill-at-a-random-point resume with byte-identical final tallies.

use proptest::prelude::*;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use tei_core::journal::{self, CampaignManifest, Journal};
use tei_core::{campaign, DaModel, TeiError};
use tei_timing::VoltageReduction;
use tei_workloads::{build, BenchmarkId, Scale};

const MEM: usize = 8 << 20;
const RUNS: usize = 48;

fn golden() -> &'static campaign::GoldenRun {
    static GOLDEN: OnceLock<campaign::GoldenRun> = OnceLock::new();
    GOLDEN.get_or_init(|| {
        let bench = build(BenchmarkId::Sobel, Scale::Test);
        campaign::GoldenRun::capture(&bench, MEM, u64::MAX).expect("golden run")
    })
}

fn model() -> DaModel {
    DaModel::from_fixed(VoltageReduction::VR20, 1e-2)
}

fn cfg(threads: usize) -> campaign::CampaignConfig {
    campaign::CampaignConfig {
        runs: RUNS,
        seed: 7,
        threads,
        ..Default::default()
    }
}

/// A fresh journal directory under the system temp dir, unique per call.
fn scratch_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("tei-journal-test-{}-{tag}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn clean_counts(threads: usize) -> campaign::OutcomeCounts {
    campaign::run_campaign_checked("sobel", golden(), &model(), &cfg(threads))
        .expect("clean campaign")
        .counts
}

fn journal_file(dir: &std::path::Path, cfg: &campaign::CampaignConfig) -> PathBuf {
    let manifest = campaign::campaign_manifest("sobel", golden(), &model(), cfg);
    dir.join(manifest.file_name())
}

/// Interrupt a durable sweep after `stop_after` journal appends, then
/// resume it to completion; the final counts must be byte-identical to an
/// uninterrupted campaign regardless of the thread counts involved.
fn interrupt_and_resume(
    stop_after: u64,
    interrupted_threads: usize,
    resume_threads: usize,
) -> campaign::OutcomeCounts {
    let dir = scratch_dir("resume");
    let mut c = cfg(interrupted_threads);
    c.chaos.stop_after_appends = Some(stop_after);
    match campaign::run_campaign_durable("sobel", golden(), &model(), &c, &dir) {
        Err(TeiError::Interrupted {
            completed,
            requested,
        }) => {
            assert!(completed >= stop_after, "stop hook fired early");
            assert_eq!(requested, RUNS as u64);
        }
        Ok(_) => panic!("sweep with stop_after_appends={stop_after} was not interrupted"),
        Err(e) => panic!("unexpected error: {e}"),
    }
    let result =
        campaign::run_campaign_durable("sobel", golden(), &model(), &cfg(resume_threads), &dir)
            .expect("resumed campaign");
    std::fs::remove_dir_all(&dir).ok();
    result.counts
}

fn counts_json(c: &campaign::OutcomeCounts) -> String {
    serde_json::to_string(c).expect("serializable counts")
}

#[test]
fn interrupted_sweep_resumes_byte_identical() {
    let clean = counts_json(&clean_counts(4));
    assert_eq!(counts_json(&interrupt_and_resume(10, 1, 4)), clean);
    assert_eq!(counts_json(&interrupt_and_resume(10, 4, 1)), clean);
}

#[test]
fn completed_journal_replays_without_reexecution() {
    let dir = scratch_dir("replay");
    let c = cfg(2);
    let first =
        campaign::run_campaign_durable("sobel", golden(), &model(), &c, &dir).expect("first sweep");
    // Second invocation finds every run journaled: identical result.
    let second = campaign::run_campaign_durable("sobel", golden(), &model(), &c, &dir)
        .expect("replayed sweep");
    assert_eq!(counts_json(&first.counts), counts_json(&second.counts));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_tail_is_truncated_and_resumed() {
    let dir = scratch_dir("torn");
    let mut c = cfg(1);
    c.chaos.stop_after_appends = Some(12);
    campaign::run_campaign_durable("sobel", golden(), &model(), &c, &dir).unwrap_err();
    // Simulate a crash mid-append: a partial frame at the tail.
    let path = journal_file(&dir, &c);
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .expect("journal exists");
    f.write_all(&[0x2b, 0x00, 0x00, 0x00, 0xde, 0xad])
        .expect("torn tail");
    drop(f);
    let before = std::fs::metadata(&path).expect("metadata").len();
    let result = campaign::run_campaign_durable("sobel", golden(), &model(), &cfg(2), &dir)
        .expect("resume past torn tail");
    assert_eq!(counts_json(&result.counts), counts_json(&clean_counts(1)));
    let after = std::fs::metadata(&path).expect("metadata").len();
    assert!(after > before - 6, "journal kept growing after recovery");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_checksum_drops_the_tail_record() {
    let dir = scratch_dir("corrupt");
    let mut c = cfg(1);
    c.chaos.stop_after_appends = Some(8);
    campaign::run_campaign_durable("sobel", golden(), &model(), &c, &dir).unwrap_err();
    // Flip one payload byte of the final record; its trailing checksum no
    // longer matches, so recovery must drop it (and only it).
    let path = journal_file(&dir, &c);
    let mut bytes = std::fs::read(&path).expect("read journal");
    let n = bytes.len();
    bytes[n - 20] ^= 0xff;
    std::fs::write(&path, &bytes).expect("re-write journal");
    let result = campaign::run_campaign_durable("sobel", golden(), &model(), &cfg(1), &dir)
        .expect("resume past corrupt record");
    // The dropped run was re-executed: counts still byte-identical.
    assert_eq!(counts_json(&result.counts), counts_json(&clean_counts(1)));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn foreign_manifest_is_refused() {
    let dir = scratch_dir("manifest");
    let c = cfg(1);
    campaign::run_campaign_durable("sobel", golden(), &model(), &c, &dir).expect("seed sweep");
    // Masquerade the journal as belonging to a different campaign: give
    // it the file name a different-seed manifest would look for.
    let mut other_cfg = cfg(1);
    other_cfg.seed = 999;
    let victim = campaign::campaign_manifest("sobel", golden(), &model(), &other_cfg);
    let original = journal_file(&dir, &c);
    let imposter = dir.join(victim.file_name());
    std::fs::rename(&original, &imposter).expect("rename journal");
    let err = Journal::open_or_create(&dir, &victim).unwrap_err();
    match err {
        TeiError::ManifestMismatch {
            expected, found, ..
        } => assert_ne!(expected, found),
        other => panic!("expected ManifestMismatch, got {other}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stale_golden_fingerprint_changes_identity() {
    // A different golden run (different benchmark) must never share a
    // journal file with the original campaign.
    let bench = build(BenchmarkId::Is, Scale::Test);
    let other_golden = campaign::GoldenRun::capture(&bench, MEM, u64::MAX).expect("golden");
    let a: CampaignManifest = campaign::campaign_manifest("sobel", golden(), &model(), &cfg(1));
    let b: CampaignManifest =
        campaign::campaign_manifest("sobel", &other_golden, &model(), &cfg(1));
    assert_ne!(a.hash(), b.hash());
    assert_ne!(a.file_name(), b.file_name());
}

#[test]
fn panicking_run_is_retried_and_classified() {
    let mut c = cfg(2);
    c.chaos.panic_once = vec![5];
    let result = campaign::run_campaign_checked("sobel", golden(), &model(), &c).expect("campaign");
    // The retry used the same derived seed, so the sweep's final tally is
    // indistinguishable from an unperturbed one.
    assert_eq!(result.counts.quarantined, 0);
    assert!(result.quarantined.is_empty());
    assert_eq!(counts_json(&result.counts), counts_json(&clean_counts(2)));
}

#[test]
fn poisoned_run_is_quarantined_with_repro_triple() {
    let mut c = cfg(2);
    c.chaos.panic_always = vec![5, 17];
    let result = campaign::run_campaign_checked("sobel", golden(), &model(), &c).expect("campaign");
    assert_eq!(result.counts.quarantined, 2);
    assert_eq!(result.counts.total(), RUNS as u64);
    let runs: Vec<u64> = result.quarantined.iter().map(|q| q.run).collect();
    assert_eq!(runs, vec![5, 17]);
    for q in &result.quarantined {
        assert!(q.message.contains("chaos"), "repro message: {}", q.message);
    }
    // The repro triple is deterministic: a second sweep reports the same
    // seeds, targets, and masks.
    let again = campaign::run_campaign_checked("sobel", golden(), &model(), &c).expect("campaign");
    for (a, b) in result.quarantined.iter().zip(&again.quarantined) {
        assert_eq!(
            (a.run, a.seed, a.target, a.mask),
            (b.run, b.seed, b.target, b.mask)
        );
    }
    // AVM ignores quarantined runs instead of diluting the denominator.
    let classified: u64 = result.counts.total() - result.counts.quarantined;
    assert!(classified > 0);
}

#[test]
fn quarantined_runs_survive_the_journal_round_trip() {
    let dir = scratch_dir("quarantine");
    let mut c = cfg(1);
    c.chaos.panic_always = vec![3];
    c.chaos.stop_after_appends = Some(9);
    campaign::run_campaign_durable("sobel", golden(), &model(), &c, &dir).unwrap_err();
    let mut resume_cfg = cfg(1);
    resume_cfg.chaos.panic_always = vec![3];
    let result = campaign::run_campaign_durable("sobel", golden(), &model(), &resume_cfg, &dir)
        .expect("resumed");
    assert_eq!(result.counts.quarantined, 1);
    assert_eq!(result.quarantined.len(), 1);
    assert_eq!(result.quarantined[0].run, 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn atomic_artifacts_verify_and_detect_rot() {
    let dir = scratch_dir("artifact");
    let path = dir.join("results.json");
    journal::atomic_write_checksummed(&path, b"{\"rows\":[1,2,3]}").expect("write");
    assert!(journal::verify_checksummed(&path).expect("verify"));
    // Bit rot breaks verification.
    std::fs::write(&path, b"{\"rows\":[1,2,4]}").expect("tamper");
    assert!(matches!(
        journal::verify_checksummed(&path),
        Err(TeiError::JournalCorrupt { .. })
    ));
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Kill the sweep after an arbitrary number of completed runs, on an
    /// arbitrary thread count, resume on another arbitrary thread count:
    /// the final OutcomeCounts must be byte-identical to a clean run.
    #[test]
    fn kill_at_random_run_resumes_byte_identical(
        stop in 1u64..(RUNS as u64 - 1),
        t_first in 1usize..5,
        t_resume in 1usize..5,
    ) {
        let resumed = interrupt_and_resume(stop, t_first, t_resume);
        prop_assert_eq!(counts_json(&resumed), counts_json(&clean_counts(2)));
    }
}
