//! Chunked DTA campaigns must be byte-identical to the serial walk —
//! same counts, same mask-library order, same histograms — regardless
//! of thread count, lane width, or safe-bit pruning. Chunk results
//! merge in chunk-index (= transition) order and the mask reservoir is
//! seeded per `(op, vr)` cell, so the JSON encodings compare equal
//! exactly; a reference campaign driven by the interpreted
//! [`ArrivalSim`] pins all of them to the ground-truth engine.

use std::collections::BTreeMap;
use tei_core::dev::{
    dta_campaign_sampled_tuned, dta_campaign_sampled_with_threads, dta_campaign_tuned,
    dta_campaign_with_threads, random_operand_pairs, safe_bit_counts, DtaTuning, KernelBackend,
    OpErrorStats, PrunePolicy,
};
use tei_fpu::{FpuTimingSpec, FpuUnit};
use tei_softfloat::{FpOp, FpOpKind, Precision};
use tei_timing::{ArrivalSim, VoltageReduction};

const LEVELS: [VoltageReduction; 2] = [VoltageReduction::VR15, VoltageReduction::VR20];

/// The d-mul unit has the thick error tail, so campaigns actually fill
/// mask libraries; generate it once for the whole test binary.
fn test_unit() -> (&'static FpuUnit, FpuTimingSpec) {
    use std::sync::OnceLock;
    static UNIT: OnceLock<FpuUnit> = OnceLock::new();
    let spec = FpuTimingSpec::paper_calibrated();
    let unit =
        UNIT.get_or_init(|| FpuUnit::generate(FpOp::new(FpOpKind::Mul, Precision::Double), &spec));
    (unit, spec)
}

/// Ground-truth mini-campaign: walk every transition with the
/// interpreted [`ArrivalSim`] and accumulate the same per-corner
/// statistics the kernel campaigns produce (nominal clamp included).
/// No reservoir cap is applied — callers keep the pair count under it.
fn sim_reference(
    unit: &FpuUnit,
    pairs: &[(u64, u64)],
    clk: f64,
    levels: &[VoltageReduction],
) -> Vec<OpErrorStats> {
    let nl = unit.dta_netlist();
    let outputs = unit.result_port();
    let mut stats: Vec<OpErrorStats> = levels
        .iter()
        .map(|&vr| OpErrorStats {
            op: unit.op(),
            vr,
            samples: 0,
            faulty: 0,
            bit_errors: vec![0; outputs.len()],
            masks: Vec::new(),
            flip_hist: BTreeMap::new(),
        })
        .collect();
    let mut prev = unit.encode_inputs(pairs[0].0, pairs[0].1);
    for &(a, b) in &pairs[1..] {
        let cur = unit.encode_inputs(a, b);
        let r = ArrivalSim::run(&nl, &prev, &cur);
        for (s, vr) in stats.iter_mut().zip(levels) {
            let k = vr.derating_factor();
            s.samples += 1;
            let mut mask = 0u64;
            for (bit, &net) in outputs.iter().enumerate() {
                if r.settle[net.index()].min(clk) * k > clk {
                    mask |= 1 << bit;
                    s.bit_errors[bit] += 1;
                }
            }
            if mask != 0 {
                s.faulty += 1;
                *s.flip_hist.entry(mask.count_ones() as usize).or_default() += 1;
                s.masks.push(mask);
            }
        }
        prev = cur;
    }
    stats
}

#[test]
fn parallel_campaign_equals_serial_byte_for_byte() {
    let (unit, spec) = test_unit();
    let pairs = random_operand_pairs(unit.op(), 403, 0xd7a_cafe);
    let serial =
        dta_campaign_with_threads(unit, &pairs, spec.clk, &LEVELS, 1).expect("serial campaign");
    assert!(
        serial.iter().any(|s| s.faulty > 0),
        "campaign should observe errors for the comparison to be meaningful"
    );
    for threads in [2usize, 3, 8] {
        let parallel = dta_campaign_with_threads(unit, &pairs, spec.clk, &LEVELS, threads)
            .expect("parallel campaign");
        assert_eq!(
            serde_json::to_string(&serial).expect("serialize serial"),
            serde_json::to_string(&parallel).expect("serialize parallel"),
            "{threads}-thread campaign diverged from serial"
        );
    }
}

/// The tentpole equivalence matrix: every supported lane width, serial
/// and parallel, with and without safe-bit pruning, on **both** engine
/// backends (interpreted `ArrivalKernel` and the netlist-specialized
/// generated kernel), must reproduce the interpreted `ArrivalSim`
/// reference byte for byte — a 3-way interpreter/codegen/`ArrivalSim`
/// agreement. Under the `sanitize-arrivals` feature the campaign inner
/// loop additionally cross-checks every pruned mask against a full bit
/// scan.
#[test]
fn lane_widths_match_arrival_sim_byte_for_byte() {
    let (unit, spec) = test_unit();
    for seed in [0xd7a_cafeu64, 0x51ced] {
        let pairs = random_operand_pairs(unit.op(), 403, seed);
        let reference = serde_json::to_string(&sim_reference(unit, &pairs, spec.clk, &LEVELS))
            .expect("serialize reference");
        for backend in [KernelBackend::Interpreter, KernelBackend::Generated] {
            for lanes in [1usize, 4, 8] {
                for threads in [1usize, 3] {
                    for prune in [PrunePolicy::ForceOn, PrunePolicy::ForceOff] {
                        let got = dta_campaign_tuned(
                            unit,
                            &pairs,
                            spec.clk,
                            &LEVELS,
                            threads,
                            DtaTuning {
                                prune,
                                lanes: Some(lanes),
                                backend,
                            },
                        )
                        .expect("campaign");
                        assert_eq!(
                            serde_json::to_string(&got).expect("serialize campaign"),
                            reference,
                            "backend={backend:?} lanes={lanes} threads={threads} \
                             prune={prune:?} seed={seed:#x} diverged from ArrivalSim"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn parallel_sampled_campaign_equals_serial_byte_for_byte() {
    let (unit, spec) = test_unit();
    let trace = random_operand_pairs(unit.op(), 300, 0x5a5a);
    // An arbitrary non-monotonic sample pattern over valid indices.
    let indices: Vec<usize> = (1..trace.len()).filter(|i| i % 3 != 0).collect();
    let serial = dta_campaign_sampled_with_threads(unit, &trace, &indices, spec.clk, &LEVELS, 1)
        .expect("serial sampled campaign");
    for threads in [2usize, 5] {
        let parallel =
            dta_campaign_sampled_with_threads(unit, &trace, &indices, spec.clk, &LEVELS, threads)
                .expect("parallel sampled campaign");
        assert_eq!(
            serde_json::to_string(&serial).expect("serialize serial"),
            serde_json::to_string(&parallel).expect("serialize parallel"),
            "{threads}-thread sampled campaign diverged from serial"
        );
    }
    // The generated backend must reproduce the same sampled statistics.
    for backend in [KernelBackend::Interpreter, KernelBackend::Generated] {
        let tuned = dta_campaign_sampled_tuned(
            unit,
            &trace,
            &indices,
            spec.clk,
            &LEVELS,
            3,
            DtaTuning {
                backend,
                ..DtaTuning::default()
            },
        )
        .expect("tuned sampled campaign");
        assert_eq!(
            serde_json::to_string(&serial).expect("serialize serial"),
            serde_json::to_string(&tuned).expect("serialize tuned"),
            "sampled campaign on {backend:?} diverged from serial"
        );
    }
}

#[test]
fn safe_bit_pruning_is_byte_identical_to_full_scan() {
    let (unit, spec) = test_unit();
    let pairs = random_operand_pairs(unit.op(), 403, 0xd7a_cafe);
    // Force the pruning on: the default `PrunePolicy::Auto` only prunes
    // past the measured break-even fraction, but this test is about the
    // *exactness* of the skip, not whether it pays.
    let pruned = dta_campaign_tuned(
        unit,
        &pairs,
        spec.clk,
        &LEVELS,
        1,
        DtaTuning {
            prune: PrunePolicy::ForceOn,
            ..DtaTuning::default()
        },
    )
    .expect("pruned campaign");
    let unpruned = dta_campaign_tuned(
        unit,
        &pairs,
        spec.clk,
        &LEVELS,
        1,
        DtaTuning {
            prune: PrunePolicy::ForceOff,
            ..DtaTuning::default()
        },
    )
    .expect("unpruned campaign");
    assert_eq!(
        serde_json::to_string(&pruned).expect("serialize pruned"),
        serde_json::to_string(&unpruned).expect("serialize unpruned"),
        "pruning must not change any statistic"
    );
    // The pruning must actually remove work at these corners for the
    // throughput claim in BENCH_dta.json to mean anything.
    let safe = safe_bit_counts(unit, spec.clk, &LEVELS);
    assert!(
        safe.iter().any(|&n| n > 0),
        "oracle proves no bits safe — pruning is vacuous: {safe:?}"
    );
    // Safer bits at the milder voltage reduction: VR15 derates less.
    assert!(safe[0] >= safe[1], "VR15 {} < VR20 {}", safe[0], safe[1]);
}

#[test]
fn thread_count_overshoot_is_clamped() {
    let (unit, spec) = test_unit();
    let pairs = random_operand_pairs(unit.op(), 6, 1);
    // More threads than chunks: workers clamp without panicking.
    let stats =
        dta_campaign_with_threads(unit, &pairs, spec.clk, &LEVELS, 64).expect("clamped campaign");
    assert_eq!(stats[0].samples, 5);
    let empty =
        dta_campaign_with_threads(unit, &pairs[..1], spec.clk, &LEVELS, 4).expect("empty campaign");
    assert_eq!(empty[0].samples, 0, "single pair only establishes state");
}
