//! Sharded DTA campaigns must be byte-identical to the serial walk:
//! same counts, same mask-library order, same histograms, regardless of
//! thread count. The shard merge concatenates in shard order and the
//! mask reservoir is seeded per `(op, vr)` cell, so the JSON encodings
//! compare equal exactly.

use tei_core::dev::{
    dta_campaign_sampled_with_threads, dta_campaign_tuned, dta_campaign_with_threads,
    random_operand_pairs, safe_bit_counts, DtaTuning,
};
use tei_fpu::{FpuTimingSpec, FpuUnit};
use tei_softfloat::{FpOp, FpOpKind, Precision};
use tei_timing::VoltageReduction;

const LEVELS: [VoltageReduction; 2] = [VoltageReduction::VR15, VoltageReduction::VR20];

/// The d-mul unit has the thick error tail, so campaigns actually fill
/// mask libraries; generate it once for the whole test binary.
fn test_unit() -> (&'static FpuUnit, FpuTimingSpec) {
    use std::sync::OnceLock;
    static UNIT: OnceLock<FpuUnit> = OnceLock::new();
    let spec = FpuTimingSpec::paper_calibrated();
    let unit =
        UNIT.get_or_init(|| FpuUnit::generate(FpOp::new(FpOpKind::Mul, Precision::Double), &spec));
    (unit, spec)
}

#[test]
fn parallel_campaign_equals_serial_byte_for_byte() {
    let (unit, spec) = test_unit();
    let pairs = random_operand_pairs(unit.op(), 403, 0xd7a_cafe);
    let serial = dta_campaign_with_threads(unit, &pairs, spec.clk, &LEVELS, 1);
    assert!(
        serial.iter().any(|s| s.faulty > 0),
        "campaign should observe errors for the comparison to be meaningful"
    );
    for threads in [2usize, 3, 8] {
        let parallel = dta_campaign_with_threads(unit, &pairs, spec.clk, &LEVELS, threads);
        assert_eq!(
            serde_json::to_string(&serial).expect("serialize serial"),
            serde_json::to_string(&parallel).expect("serialize parallel"),
            "{threads}-thread campaign diverged from serial"
        );
    }
}

#[test]
fn parallel_sampled_campaign_equals_serial_byte_for_byte() {
    let (unit, spec) = test_unit();
    let trace = random_operand_pairs(unit.op(), 300, 0x5a5a);
    // An arbitrary non-monotonic sample pattern over valid indices.
    let indices: Vec<usize> = (1..trace.len()).filter(|i| i % 3 != 0).collect();
    let serial = dta_campaign_sampled_with_threads(unit, &trace, &indices, spec.clk, &LEVELS, 1);
    for threads in [2usize, 5] {
        let parallel =
            dta_campaign_sampled_with_threads(unit, &trace, &indices, spec.clk, &LEVELS, threads);
        assert_eq!(
            serde_json::to_string(&serial).expect("serialize serial"),
            serde_json::to_string(&parallel).expect("serialize parallel"),
            "{threads}-thread sampled campaign diverged from serial"
        );
    }
}

#[test]
fn safe_bit_pruning_is_byte_identical_to_full_scan() {
    let (unit, spec) = test_unit();
    let pairs = random_operand_pairs(unit.op(), 403, 0xd7a_cafe);
    let pruned = dta_campaign_with_threads(unit, &pairs, spec.clk, &LEVELS, 1);
    let unpruned = dta_campaign_tuned(
        unit,
        &pairs,
        spec.clk,
        &LEVELS,
        1,
        DtaTuning {
            prune_safe_bits: false,
        },
    );
    assert_eq!(
        serde_json::to_string(&pruned).expect("serialize pruned"),
        serde_json::to_string(&unpruned).expect("serialize unpruned"),
        "pruning must not change any statistic"
    );
    // The pruning must actually remove work at these corners for the
    // throughput claim in BENCH_dta.json to mean anything.
    let safe = safe_bit_counts(unit, spec.clk, &LEVELS);
    assert!(
        safe.iter().any(|&n| n > 0),
        "oracle proves no bits safe — pruning is vacuous: {safe:?}"
    );
    // Safer bits at the milder voltage reduction: VR15 derates less.
    assert!(safe[0] >= safe[1], "VR15 {} < VR20 {}", safe[0], safe[1]);
}

#[test]
fn thread_count_overshoot_is_clamped() {
    let (unit, spec) = test_unit();
    let pairs = random_operand_pairs(unit.op(), 6, 1);
    // More threads than transitions: shards clamp without panicking.
    let stats = dta_campaign_with_threads(unit, &pairs, spec.clk, &LEVELS, 64);
    assert_eq!(stats[0].samples, 5);
    let empty = dta_campaign_with_threads(unit, &pairs[..1], spec.clk, &LEVELS, 4);
    assert_eq!(empty[0].samples, 0, "single pair only establishes state");
}
