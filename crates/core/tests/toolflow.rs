//! End-to-end toolflow tests: model development → error models →
//! injection campaigns, validating the paper's qualitative structure.

use std::sync::OnceLock;
use tei_core::{campaign, dev, models, models::InjectionModel, DaModel, StatModel};
use tei_fpu::{FpuBank, FpuTimingSpec};
use tei_softfloat::{FpOp, FpOpKind, Precision};
use tei_timing::VoltageReduction;
use tei_workloads::{build, BenchmarkId, Scale};

fn bank() -> &'static (FpuBank, FpuTimingSpec) {
    static BANK: OnceLock<(FpuBank, FpuTimingSpec)> = OnceLock::new();
    BANK.get_or_init(dev::default_bank)
}

const MEM: usize = 8 << 20;

#[test]
fn ia_model_matches_paper_structure() {
    let (bank, spec) = bank();
    use FpOpKind::*;
    use Precision::*;
    let samples = 1500;
    let ia15 =
        StatModel::instruction_aware(bank, spec, VoltageReduction::VR15, samples, 42).unwrap();
    let ia20 =
        StatModel::instruction_aware(bank, spec, VoltageReduction::VR20, samples, 42).unwrap();
    // Conversions and every single-precision op are error-free at both
    // corners (paper Fig. 7); errors concentrate in double arithmetic.
    for op in FpOp::all() {
        let e15 = ia15.error_ratio(op);
        let e20 = ia20.error_ratio(op);
        if op.precision == Single || matches!(op.kind, ItoF | FtoI) {
            assert_eq!(e15, 0.0, "{op} must be error-free at VR15");
            assert_eq!(e20, 0.0, "{op} must be error-free at VR20");
        } else {
            assert!(e20 >= e15, "{op}: deeper undervolting cannot reduce errors");
        }
    }
    // fp-mul (d) is the most error-prone instruction.
    let mul20 = ia20.error_ratio(FpOp::new(Mul, Double));
    assert!(mul20 > 0.0, "d-mul errs at VR20");
    for op in FpOp::all() {
        assert!(
            mul20 >= ia20.error_ratio(op),
            "{op} should not exceed d-mul"
        );
    }
}

#[test]
fn wa_models_differ_across_workloads() {
    // The same instruction type shows workload-dependent error statistics
    // (paper Fig. 8): is's fp-mul mix differs from sobel's.
    let (bank, spec) = bank();
    let cap = 1200;
    let mut ratios = Vec::new();
    for id in [BenchmarkId::Is, BenchmarkId::Sobel, BenchmarkId::Kmeans] {
        let bench = build(id, Scale::Test);
        let trace = dev::TraceSet::capture(&bench.program, MEM, u64::MAX, cap);
        let wa =
            StatModel::workload_aware(bank, spec, VoltageReduction::VR20, &trace, cap).unwrap();
        let er = campaign_free_error_ratio(&wa);
        ratios.push((id, er));
    }
    // At least two workloads must disagree in overall ER.
    let vals: Vec<f64> = ratios.iter().map(|(_, e)| *e).collect();
    let max = vals.iter().cloned().fold(0.0f64, f64::max);
    let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        max > min * 1.5 || (min == 0.0 && max > 0.0) || max == 0.0,
        "workload-aware ERs should differ across workloads: {ratios:?}"
    );
}

fn campaign_free_error_ratio(m: &StatModel) -> f64 {
    FpOp::all().iter().map(|&op| m.error_ratio(op)).sum()
}

#[test]
fn flip_histogram_shows_multibit_errors() {
    // Paper Fig. 5: timing errors flip multiple bits in most cases.
    let (bank, spec) = bank();
    let op = FpOp::new(FpOpKind::Mul, Precision::Double);
    let pairs = dev::random_operand_pairs(op, 2500, 7);
    let stats = dev::dta_campaign(bank.unit(op), &pairs, spec.clk, &[VoltageReduction::VR20])
        .expect("campaign");
    let s = &stats[0];
    assert!(s.faulty > 0, "need faulty samples to histogram");
    let multi: u64 = s
        .flip_hist
        .iter()
        .filter(|(&k, _)| k >= 2)
        .map(|(_, &v)| v)
        .sum();
    assert!(
        multi > 0,
        "multi-bit flips must occur (hist: {:?})",
        s.flip_hist
    );
}

#[test]
fn ber_estimate_converges_with_sample_count() {
    // Paper Fig. 6: more DTA samples → lower average absolute error
    // against the full-trace reference.
    let (bank, spec) = bank();
    let op = FpOp::new(FpOpKind::Mul, Precision::Double);
    let bench = build(BenchmarkId::Is, Scale::Test);
    let trace = dev::TraceSet::capture(&bench.program, MEM, u64::MAX, usize::MAX);
    let full = trace.of(op);
    assert!(
        full.len() > 2000,
        "is must be fp-mul heavy, got {}",
        full.len()
    );
    let unit = bank.unit(op);
    let reference = dev::dta_campaign(unit, full, spec.clk, &[VoltageReduction::VR20])
        .expect("campaign")
        .pop()
        .unwrap()
        .ber();
    let ae_of = |k: usize| {
        let sub = dev::dta_campaign(unit, &full[..k], spec.clk, &[VoltageReduction::VR20])
            .expect("campaign")
            .pop()
            .unwrap()
            .ber();
        dev::average_absolute_error(&reference, &sub)
    };
    let coarse = ae_of(full.len() / 16);
    let fine = ae_of(full.len() * 3 / 4);
    assert!(
        fine <= coarse + 1e-9,
        "AE must shrink with samples: {coarse} -> {fine}"
    );
}

#[test]
fn da_campaign_produces_nonmasked_outcomes() {
    let bench = build(BenchmarkId::Sobel, Scale::Test);
    let golden = campaign::GoldenRun::capture(&bench, MEM, u64::MAX).unwrap();
    let da = DaModel::from_fixed(VoltageReduction::VR20, 1e-2);
    let cfg = campaign::CampaignConfig {
        runs: 60,
        seed: 9,
        ..Default::default()
    };
    let r = campaign::run_campaign("sobel", &golden, &da, &cfg);
    assert_eq!(r.counts.total(), 60);
    assert!(
        r.counts.sdc + r.counts.crash + r.counts.timeout > 0,
        "single-bit corruptions must sometimes surface: {:?}",
        r.counts
    );
    assert!((r.error_ratio - 1e-2).abs() < 1e-12, "DA ER is fixed");
    assert!(r.avm() > 0.0 && r.avm() <= 1.0);
}

#[test]
fn wa_campaign_respects_zero_error_workloads() {
    // If the WA model finds no error-prone instructions at a corner, every
    // run is masked (the paper's hotspot-at-VR15 observation).
    let (bank, spec) = bank();
    let bench = build(BenchmarkId::Kmeans, Scale::Test);
    let trace = dev::TraceSet::capture(&bench.program, MEM, u64::MAX, 1000);
    let wa = StatModel::workload_aware(bank, spec, VoltageReduction::VR15, &trace, 1000).unwrap();
    let golden = campaign::GoldenRun::capture(&bench, MEM, u64::MAX).unwrap();
    let cfg = campaign::CampaignConfig {
        runs: 25,
        seed: 5,
        ..Default::default()
    };
    let r = campaign::run_campaign("k-means", &golden, &wa, &cfg);
    if campaign_free_error_ratio(&wa) == 0.0 {
        assert_eq!(r.counts.masked, 25, "zero-error model ⇒ all masked");
        assert_eq!(r.counts.masked_no_error, 25);
        assert_eq!(r.avm(), 0.0);
    } else {
        assert_eq!(r.counts.total(), 25);
    }
}

#[test]
fn da_vs_wa_error_ratio_divergence() {
    // The headline: the DA model's fixed ER diverges from the workload-
    // aware ER by large factors (paper: ~250× on average; our measured
    // per-benchmark spread is recorded in EXPERIMENTS.md). sobel's
    // integer-derived narrow operands leave it (nearly) error-free at
    // VR15, where the DA model still assumes its fixed 1e-3.
    let (bank, spec) = bank();
    let bench = build(BenchmarkId::Sobel, Scale::Test);
    let trace = dev::TraceSet::capture(&bench.program, MEM, u64::MAX, 4000);
    let golden = campaign::GoldenRun::capture(&bench, MEM, u64::MAX).unwrap();
    let wa = StatModel::workload_aware(bank, spec, VoltageReduction::VR15, &trace, 4000).unwrap();
    let da = DaModel::from_fixed(VoltageReduction::VR15, 1e-3);
    let wa_er = campaign::model_error_ratio(&wa, &golden);
    let da_er = campaign::model_error_ratio(&da, &golden);
    assert!((da_er - 1e-3).abs() < 1e-12);
    assert!(
        wa_er < da_er / 5.0,
        "expected large DA/WA divergence, wa={wa_er} da={da_er}"
    );
}

#[test]
fn golden_run_records_microarchitectural_events() {
    let bench = build(BenchmarkId::Kmeans, Scale::Test);
    let golden = campaign::GoldenRun::capture(&bench, MEM, u64::MAX).unwrap();
    assert!(golden.fp_ops > 0);
    assert_eq!(
        golden.arch_by_op.iter().map(Vec::len).sum::<usize>() as u64,
        golden.fp_ops
    );
    // k-means' data-dependent argmin branches put FP ops on the wrong path.
    let squashed: u64 = golden.squashed_by_op.iter().sum();
    assert!(
        squashed > 0,
        "k-means should exhibit wrong-path FP writebacks"
    );
}

#[test]
fn models_serialize_roundtrip() {
    let (bank, spec) = bank();
    let ia = StatModel::instruction_aware(bank, spec, VoltageReduction::VR20, 300, 3).unwrap();
    let json = serde_json::to_string(&ia).expect("serialize");
    let back: StatModel = serde_json::from_str(&json).expect("deserialize");
    for op in FpOp::all() {
        assert_eq!(ia.error_ratio(op), back.error_ratio(op));
    }
    let da = DaModel::from_fixed(VoltageReduction::VR15, 1e-3);
    let json = serde_json::to_string(&da).expect("serialize");
    let back: DaModel = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.fixed_er(), 1e-3);
}

#[test]
fn mask_sampling_variants_behave() {
    use rand::SeedableRng;
    let (bank, spec) = bank();
    let op = FpOp::new(FpOpKind::Mul, Precision::Double);
    let ia = StatModel::instruction_aware(bank, spec, VoltageReduction::VR20, 1500, 11).unwrap();
    if ia.error_ratio(op) == 0.0 {
        return; // nothing to sample at this calibration
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let empirical = ia.clone().with_sampling(models::MaskSampling::Empirical);
    let independent = ia.with_sampling(models::MaskSampling::IndependentBits);
    for _ in 0..50 {
        assert_ne!(empirical.sample_mask(op, &mut rng), 0);
        assert_ne!(independent.sample_mask(op, &mut rng), 0);
    }
}
