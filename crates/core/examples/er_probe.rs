//! Probe: WA-model error ratios per benchmark × VR (feeds Fig 10 shape).
use tei_core::{campaign, dev, models::StatModel, InjectionModel, TeiError};
use tei_softfloat::FpOp;
use tei_timing::VoltageReduction;
use tei_workloads::{build, BenchmarkId, Scale};

fn main() -> Result<(), TeiError> {
    let (bank, spec) = dev::default_bank();
    let cap = 20_000;
    for id in BenchmarkId::all() {
        let bench = build(id, Scale::Small);
        let trace = dev::TraceSet::capture(&bench.program, 8 << 20, u64::MAX, cap);
        let golden = campaign::GoldenRun::capture(&bench, 8 << 20, u64::MAX)?;
        let mut line = format!("{:8}", id.name());
        for vr in [VoltageReduction::VR15, VoltageReduction::VR20] {
            let wa = StatModel::workload_aware(&bank, &spec, vr, &trace, cap)?;
            let er = campaign::model_error_ratio(&wa, &golden);
            line += &format!("  {}: ER {:.2e}", vr.label(), er);
            let mut top = (String::new(), 0.0);
            for op in FpOp::all() {
                let e = wa.error_ratio(op);
                if e > top.1 {
                    top = (op.to_string(), e);
                }
            }
            if top.1 > 0.0 {
                line += &format!(" (top {} {:.1e})", top.0, top.1);
            }
        }
        println!("{line}");
    }
    Ok(())
}
