//! # tei — cross-layer timing error injection
//!
//! Umbrella crate re-exporting the full `tei` toolchain, a Rust
//! reproduction of *"Boosting Microprocessor Efficiency: Circuit- and
//! Workload-Aware Assessment of Timing Errors"* (IISWC 2021).
//!
//! See the individual crates for details:
//!
//! * [`netlist`] — gate-level circuits and datapath builders
//! * [`timing`] — static and dynamic timing analysis, voltage derating
//! * [`softfloat`] — bit-accurate IEEE-754 reference arithmetic
//! * [`fpu`] — gate-level FPU datapath generators
//! * [`isa`] — the simulated instruction set and assembler
//! * [`uarch`] — the out-of-order pipeline simulator
//! * [`workloads`] — the seven benchmark kernels
//! * [`core`] — error models (DA/IA/WA), injection campaigns, AVM, energy
//! * [`kernels`] — build-time netlist-specialized arrival kernels

pub use tei_core as core;
pub use tei_fpu as fpu;
pub use tei_isa as isa;
pub use tei_kernels as kernels;
pub use tei_netlist as netlist;
pub use tei_softfloat as softfloat;
pub use tei_timing as timing;
pub use tei_uarch as uarch;
pub use tei_workloads as workloads;
